"""Sharded single-writer accumulator state with microbatched ingest.

Each :class:`AccumulatorShard` owns a private ``{stream name ->
stream}`` map — streams come from the configured
:class:`~repro.kernels.base.SumKernel`'s ``new_stream()`` (the native
:class:`~repro.streaming.ExactRunningSum` for the default ``running``
kernel, a :class:`~repro.kernels.base.KernelStream` otherwise) —
mutated by exactly one asyncio task, the shard's *writer loop*, so the
hot path needs no locks. Work arrives through a bounded queue as two
op kinds:

* **fold** — append an already-validated float64 array to a stream.
  The writer drains every op sitting in the queue, coalesces
  *contiguous runs* of folds per stream into one ``np.concatenate`` +
  one bulk ``add_array``, and only then resolves their futures. That is the microbatching win: k concurrent small adds cost
  one superaccumulator fold, not k.
* **call** — run an arbitrary function against the shard's stream map
  (reads, merges, drains). Calls are *sequence points*: coalescing
  never reorders a fold past a call, so a read enqueued after a set of
  folds observes all of them — FIFO queue order is the snapshot
  consistency story.

Exactness makes this sharding trivial where a float service would be
wrong: superaccumulator addition commutes and merges are exact, so a
stream's value may be scattered across shards as partial sums and
recombined at read time with a bit-identical result regardless of
which shard saw which update in which order.

Backpressure is the queue bound: ``policy="block"`` makes submitters
await capacity (end-to-end flow control); ``policy="reject"`` raises
:class:`BackpressureError` with a retry hint, for callers that prefer
shedding load to queueing it.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.errors import BackpressureError
from repro.kernels import SumKernel, get_kernel
from repro.serve.metrics import ServiceMetrics

__all__ = ["AccumulatorShard"]


class _Op:
    """One queued unit of shard work (fold or call)."""

    __slots__ = ("kind", "stream", "array", "fn", "future")

    def __init__(
        self,
        kind: str,
        future: "asyncio.Future[Any]",
        *,
        stream: Optional[str] = None,
        array: Optional[np.ndarray] = None,
        fn: Optional[Callable[[Dict[str, Any]], Any]] = None,
    ) -> None:
        self.kind = kind
        self.stream = stream
        self.array = array
        self.fn = fn
        self.future = future


_STOP = object()


class AccumulatorShard:
    """One single-writer shard of the service's accumulator registry."""

    def __init__(
        self,
        shard_id: int,
        *,
        queue_depth: int = 256,
        policy: str = "block",
        retry_after: float = 0.05,
        metrics: Optional[ServiceMetrics] = None,
        radix: RadixConfig = DEFAULT_RADIX,
        kernel: Optional[SumKernel] = None,
    ) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if policy not in ("block", "reject"):
            raise ValueError(f"unknown backpressure policy {policy!r}")
        self.shard_id = int(shard_id)
        self.policy = policy
        self.retry_after = float(retry_after)
        self.radix = radix
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=queue_depth)
        self._task: Optional["asyncio.Task[None]"] = None
        self._streams: Dict[str, Any] = {}
        # Folds route through the kernel so tier telemetry lands in the
        # shared ServiceMetrics tally; stateful streams always take the
        # exact bulk path (exact_variant, counted as Tier-2 folds) —
        # the certifying tiers serve the stateless `sum` op.
        if kernel is None:
            kernel = get_kernel(
                "running", radix=radix, counters=self.metrics.tiering
            )
        self._kernel = kernel.exact_variant()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the writer loop (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"repro-shard-{self.shard_id}"
            )

    async def stop(self) -> None:
        """Drain outstanding work, then stop the writer loop."""
        if self._task is None:
            return
        await self._queue.put(_STOP)
        await self._task
        self._task = None

    @property
    def queue_depth(self) -> int:
        """Ops currently waiting in this shard's queue."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # submission (any task may call; the queue serializes)
    # ------------------------------------------------------------------

    async def _submit(self, op: _Op) -> Any:
        if self.policy == "reject":
            try:
                self._queue.put_nowait(op)
            except asyncio.QueueFull:
                self.metrics.record_rejection()
                raise BackpressureError(
                    f"shard {self.shard_id} ingest queue full "
                    f"({self._queue.maxsize} ops)",
                    retry_after=self.retry_after,
                ) from None
        else:
            await self._queue.put(op)
        self.metrics.record_queue_depth(self._queue.qsize())
        return await op.future

    async def fold(self, stream: str, array: np.ndarray) -> int:
        """Append a validated float64 array to ``stream``; returns its size.

        The array must already be finite float64 (the service layer
        validates before routing) because coalesced folds share one
        ``add_array`` call and must not fail on a neighbour's input.
        """
        fut: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        await self._submit(_Op("fold", fut, stream=stream, array=array))
        return int(array.size)

    async def call(self, fn: Callable[[Dict[str, Any]], Any]) -> Any:
        """Run ``fn`` against the stream map inside the writer loop.

        FIFO-ordered after every previously enqueued fold — the
        snapshot-read primitive.
        """
        fut: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        return await self._submit(_Op("call", fut, fn=fn))

    # ------------------------------------------------------------------
    # the writer loop
    # ------------------------------------------------------------------

    async def _run(self) -> None:
        stopping = False
        while not stopping:
            batch: List[Any] = [await self._queue.get()]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            # Coalesce contiguous fold runs; execute calls in place so
            # queue order is observable order.
            run: List[_Op] = []
            for item in batch:
                if item is _STOP:
                    stopping = True
                    continue
                if item.kind == "fold":
                    run.append(item)
                    continue
                self._flush_folds(run)
                run = []
                self._execute_call(item)
            self._flush_folds(run)

    def _flush_folds(self, run: List[_Op]) -> None:
        if not run:
            return
        per_stream: Dict[str, List[_Op]] = {}
        for op in run:
            per_stream.setdefault(op.stream, []).append(op)
        for stream, ops in per_stream.items():
            arrays = [op.array for op in ops]
            merged = arrays[0] if len(arrays) == 1 else np.concatenate(arrays)
            try:
                rs = self._streams.get(stream)
                if rs is None:
                    rs = self._streams[stream] = self._kernel.new_stream()
                self._kernel.fold_into(rs, merged)
            except Exception as exc:  # defensive: inputs are pre-validated
                for op in ops:
                    if not op.future.cancelled():
                        op.future.set_exception(exc)
                continue
            self.metrics.record_fold(int(merged.size), len(ops))
            for op in ops:
                if not op.future.cancelled():
                    op.future.set_result(int(op.array.size))

    def _execute_call(self, op: _Op) -> None:
        try:
            result = op.fn(self._streams)
        except Exception as exc:
            if not op.future.cancelled():
                op.future.set_exception(exc)
            return
        if not op.future.cancelled():
            op.future.set_result(result)
