"""Architecture-invariant rules: the shape PR 4's refactor must keep.

The kernel/codec/planner architecture is only bit-safe while three
structural facts hold: every byte layout lives in ``repro.codec``
(ARCH001), everything registered as a kernel actually implements the
:class:`~repro.kernels.base.SumKernel` protocol (ARCH002), every
``to_wire`` emits a frame the codec table can decode (ARCH003), and
execution planes stay decoupled except through the shared layers and
:data:`repro.plan.PLANES` (ARCH004). These rules make those facts
machine-checked — ARCH001 replaces the CI grep gate with scope-aware
AST analysis (a grep cannot tell a comment from a call, nor allow
``codec.py`` by scope rather than by filename match).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.core import Finding, ModuleUnit, Rule, register_rule

__all__ = [
    "StructOutsideCodec",
    "KernelProtocolConformance",
    "UnregisteredWireFormat",
    "CrossPlaneImport",
    "BoxedFloatWirePayload",
]

_STRUCT_ATTRS = {
    "pack",
    "unpack",
    "pack_into",
    "unpack_from",
    "iter_unpack",
    "calcsize",
    "Struct",
}


@register_rule
class StructOutsideCodec(Rule):
    """ARCH001: ``struct`` framing anywhere but ``repro/codec.py``.

    One module owns every wire layout so frames cannot drift between
    producer and consumer. Any ``struct.pack``/``unpack``/``Struct``
    use (or ``from struct import ...``) outside the codec is ad-hoc
    framing.
    """

    id = "ARCH001"
    title = "struct framing outside repro.codec"
    rationale = (
        "byte layouts defined away from the codec registry drift from "
        "their decoders and dodge the codec fuzz tests"
    )
    fixit = (
        "move the layout into repro/codec.py as a magic-tagged frame "
        "(encode_*/decode_* pair registered in _DECODERS)"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return unit.parts != ("repro", "codec")

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "struct"
                and node.attr in _STRUCT_ATTRS
            ):
                yield self.finding(
                    unit,
                    node,
                    f"struct.{node.attr} used outside repro.codec",
                )
            elif isinstance(node, ast.ImportFrom) and node.module == "struct":
                yield self.finding(
                    unit,
                    node,
                    "importing from struct outside repro.codec",
                )


#: The SumKernel protocol surface a registered kernel must provide.
_KERNEL_REQUIRED = ("zero", "fold", "combine", "round", "to_wire", "from_wire")


def _decorator_name(dec: ast.expr) -> Optional[str]:
    if isinstance(dec, ast.Name):
        return dec.id
    if isinstance(dec, ast.Attribute):
        return dec.attr
    if isinstance(dec, ast.Call):
        return _decorator_name(dec.func)
    return None


@register_rule
class KernelProtocolConformance(Rule):
    """ARCH002: registered kernels must satisfy the SumKernel protocol.

    A class decorated with ``@register_kernel`` enters the registry
    that every plane schedules through; a missing method fails at fold
    time on whichever plane reaches it first. Check statically: the
    class (through its locally visible base chain) must define
    ``zero``/``fold``/``combine``/``round``/``to_wire``/``from_wire``
    and a distinct class-level ``name``.
    """

    id = "ARCH002"
    title = "registered kernel missing SumKernel protocol members"
    rationale = (
        "the registry promises every plane a complete "
        "fold/combine/round/wire surface; a gap is a runtime "
        "AttributeError on some plane"
    )
    fixit = "implement the missing methods or inherit a kernel that does"

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        classes: Dict[str, ast.ClassDef] = {
            node.name: node
            for node in ast.walk(unit.tree)
            if isinstance(node, ast.ClassDef)
        }
        for cls in classes.values():
            if not any(
                _decorator_name(d) == "register_kernel" for d in cls.decorator_list
            ):
                continue
            provided, has_name, leniency = self._collect(cls, classes)
            if leniency:
                # An unresolvable (imported) base may provide anything;
                # only the registry key stays checkable.
                missing: List[str] = []
            else:
                missing = [m for m in _KERNEL_REQUIRED if m not in provided]
            if missing:
                yield self.finding(
                    unit,
                    cls,
                    f"kernel class {cls.name} does not implement "
                    f"{', '.join(missing)} from the SumKernel protocol",
                )
            if not has_name:
                yield self.finding(
                    unit,
                    cls,
                    f"kernel class {cls.name} needs a class-level "
                    f"'name' string (the registry key)",
                )

    def _collect(
        self,
        cls: ast.ClassDef,
        classes: Dict[str, ast.ClassDef],
        _seen: Optional[Set[str]] = None,
    ):
        seen = _seen if _seen is not None else set()
        seen.add(cls.name)
        provided: Set[str] = set()
        has_name = False
        leniency = False
        for stmt in cls.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                provided.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "name":
                        value = stmt.value
                        if (
                            isinstance(value, ast.Constant)
                            and isinstance(value.value, str)
                            and value.value
                            and value.value != "?"
                        ):
                            has_name = True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "name"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                    and stmt.value.value not in ("", "?")
                ):
                    has_name = True
        for base in cls.bases:
            base_name = base.id if isinstance(base, ast.Name) else None
            if base_name in ("SumKernel", "ABC", "object", None):
                # The abstract protocol root provides no concrete
                # fold/wire members worth crediting.
                continue
            if base_name in classes and base_name not in seen:
                b_provided, b_name, b_len = self._collect(
                    classes[base_name], classes, seen
                )
                provided |= b_provided
                has_name = has_name or b_name
                leniency = leniency or b_len
            else:
                leniency = True
        return provided, has_name, leniency


@register_rule
class UnregisteredWireFormat(Rule):
    """ARCH003: ``to_wire`` must emit frames the codec table can decode.

    ``to_wire`` implementations may only build frames through the
    ``encode_*`` functions whose decoders are registered in
    ``repro.codec._DECODERS`` — an encoder without a registered
    decoder produces bytes :func:`repro.codec.decode` cannot dispatch.
    Four-byte bytes literals inside ``to_wire`` are ad-hoc magics and
    are flagged outright.
    """

    id = "ARCH003"
    title = "to_wire frame not registered in the codec table"
    rationale = (
        "a frame whose magic is missing from _DECODERS cannot be "
        "decoded generically; snapshots and shuffles would dead-end"
    )
    fixit = (
        "register the format in repro.codec._DECODERS and emit it "
        "through its encode_* function"
    )

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        encoders = unit.context.codec_encoders
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.FunctionDef) or node.name != "to_wire":
                continue
            if unit.enclosing_class(node) is None:
                continue
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    name = None
                    if isinstance(sub.func, ast.Name):
                        name = sub.func.id
                    elif isinstance(sub.func, ast.Attribute):
                        name = sub.func.attr
                    if (
                        name
                        and name.startswith("encode_")
                        and encoders is not None
                        and name not in encoders
                    ):
                        yield self.finding(
                            unit,
                            sub,
                            f"{name} has no decoder registered in the "
                            f"codec table (_DECODERS)",
                        )
                elif (
                    isinstance(sub, ast.Constant)
                    and isinstance(sub.value, bytes)
                    and len(sub.value) == 4
                ):
                    yield self.finding(
                        unit,
                        sub,
                        f"ad-hoc 4-byte magic {sub.value!r} in to_wire; "
                        f"frames come from the codec registry",
                    )


#: repro subpackages (and the streaming module) that are execution
#: planes: they may not import one another directly.
_PLANE_PACKAGES = {"serve", "cluster", "mapreduce", "extmem", "bsp", "pram", "streaming"}

#: Sanctioned plane-to-plane dependencies. The cluster plane is, by
#: design, a composition of serve nodes — its coordinator speaks the
#: serve protocol and its nodes *are* WAL-fronted ReproServices — so
#: cluster→serve is the architecture, not a violation. Everything
#: else still goes through the kernel layer or plan.PLANES.
_ALLOWED_PLANE_DEPS = {"cluster": {"serve"}}


@register_rule
class CrossPlaneImport(Rule):
    """ARCH004: planes talk through the kernel layer, not each other.

    Every execution plane consumes the same SumKernel protocol and is
    scheduled via :data:`repro.plan.PLANES`. A direct import from one
    plane into another couples two schedules the planner believes are
    independent (and breaks the "any plane can be deleted" property
    the matrix test relies on). Shared layers — ``core``, ``kernels``,
    ``codec``, ``data``, ``util``, ``adaptive`` — are importable from
    anywhere.
    """

    id = "ARCH004"
    title = "cross-plane import bypassing plan.PLANES"
    rationale = (
        "plane-to-plane imports create hidden coupling the planner "
        "and the bit-identity matrix cannot see"
    )
    fixit = (
        "move the shared piece into a common layer (kernels/codec/"
        "data) or dispatch through repro.plan.run_plane"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return self._plane_of(unit.parts) is not None

    @staticmethod
    def _plane_of(parts) -> Optional[str]:
        if len(parts) >= 2 and parts[1] in _PLANE_PACKAGES:
            return parts[1]
        return None

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        own = self._plane_of(unit.parts)
        for node in ast.walk(unit.tree):
            targets: List[str] = []
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                targets = [node.module]
            for target in targets:
                parts = target.split(".")
                if (
                    len(parts) >= 2
                    and parts[0] == "repro"
                    and parts[1] in _PLANE_PACKAGES
                    and parts[1] != own
                    and parts[1] not in _ALLOWED_PLANE_DEPS.get(own, set())
                ):
                    yield self.finding(
                        unit,
                        node,
                        f"plane '{own}' imports plane '{parts[1]}' "
                        f"({target}) directly",
                    )


#: Networked subpackages whose value-bearing payloads have a codec
#: fast path: boxing floats there is a silent 3-10x wire regression.
_WIRE_PACKAGES = {"serve", "cluster"}


def _is_float_boxing(node: ast.expr) -> bool:
    """``[float(v) for v in ...]`` — the boxed-payload signature."""
    if not isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        return False
    elt = node.elt
    return (
        isinstance(elt, ast.Call)
        and isinstance(elt.func, ast.Name)
        and elt.func.id == "float"
    )


@register_rule
class BoxedFloatWirePayload(Rule):
    """ARCH005: value-bearing wire/WAL payloads must use the codec.

    The serve and cluster planes carry float64 batches as codec frames
    (``BBAT`` on the wire, ``WALR`` in the log): raw little-endian
    bytes, bit-exact by construction, zero boxing. Building a payload
    as ``values=[float(v) for v in ...]`` — or ``json.dumps`` of such
    a sequence — inside those packages re-routes the batch through
    per-value Python boxing and JSON text, silently forfeiting the
    binary fast path. The JSON-lines *fallback* wire is the one
    sanctioned boxing site; mark it with a justified suppression.
    """

    id = "ARCH005"
    title = "boxed float payload on a codec-capable wire path"
    rationale = (
        "float batches boxed into JSON lists bypass the BBAT/WALR "
        "codec frames, costing ~3x wire bytes and per-value boxing on "
        "paths that have a bit-identical binary fast path"
    )
    fixit = (
        "ship the batch as an ndarray through request_batch/add_batch "
        "(codec BBAT frame), or suppress with a justification if this "
        "is the JSON-lines fallback wire itself"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return len(unit.parts) >= 2 and unit.parts[1] in _WIRE_PACKAGES

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.Call):
                func = node.func
                is_dumps = (
                    isinstance(func, ast.Attribute)
                    and func.attr == "dumps"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "json"
                )
                if is_dumps:
                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        for sub in ast.walk(arg):
                            if _is_float_boxing(sub):
                                yield self.finding(
                                    unit,
                                    sub,
                                    "json.dumps of a boxed float sequence; "
                                    "value payloads ride codec frames",
                                )
                for kw in node.keywords:
                    if kw.arg == "values" and _is_float_boxing(kw.value):
                        yield self.finding(
                            unit,
                            kw.value,
                            "boxed float list passed as a 'values' "
                            "payload; send the ndarray as a codec frame",
                        )
            elif isinstance(node, ast.Dict):
                for key, value in zip(node.keys, node.values):
                    if (
                        isinstance(key, ast.Constant)
                        and key.value == "values"
                        and value is not None
                        and _is_float_boxing(value)
                    ):
                        yield self.finding(
                            unit,
                            value,
                            "boxed float list under a 'values' payload "
                            "key; send the ndarray as a codec frame",
                        )
