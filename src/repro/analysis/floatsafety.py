"""FP-safety rules: no naive float arithmetic outside the baselines.

The package's contract is that every float result is *correctly
rounded*: sums go through the certified kernels, comparisons are
bit-identity checks made on purpose, and exact rationals are narrowed
through the rounding helpers. These rules catch the idioms that
silently break that contract — builtin ``sum`` / ``+=`` accumulation
over floats (FP001), float ``==`` (FP002), ``math.fsum`` / ``np.sum``
bypassing the kernel layer (FP003), unguarded ``float(Fraction)``
narrowing (FP004), and ``np.dot`` / ``np.vdot`` / ``np.linalg.norm``
bypassing the reduction layer (FP005).

Detection is evidence-based: an expression counts as *float-ish* only
when the AST shows a float literal, a ``float()`` / ``.to_float()`` /
``fsum`` call, or a name bound to such an expression in the same
scope. Unknown values are given the benefit of the doubt — precision
over recall, so every finding is worth reading.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.core import Finding, ModuleUnit, Rule, register_rule

__all__ = [
    "BuiltinFloatAccumulation",
    "FloatEqualityComparison",
    "KernelBypassSum",
    "KernelBypassInnerProduct",
    "UnguardedFractionNarrowing",
]

#: Calls that produce floats as far as these rules are concerned.
_FLOAT_CALL_NAMES = {"float", "fsum"}
_FLOAT_CALL_ATTRS = {
    "fsum",
    "to_float",
    "decode_float",
    "nextafter",
    "ldexp",
    "copysign",
    "fabs",
    "sqrt",
    "hypot",
    "perf_counter",
    "monotonic",
}
#: Calls that produce exact rationals.
_FRACTION_CALL_NAMES = {"Fraction"}
_FRACTION_CALL_ATTRS = {"to_fraction", "exact_fraction"}


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _Evidence:
    """Scope-local type evidence: is this expression float/Fraction-ish?

    Names resolve through the enclosing function's assignments (any
    binding with evidence taints the name); recursion is cycle-guarded.
    """

    def __init__(self, bindings: Dict[str, List[ast.expr]]) -> None:
        self.bindings = bindings

    def floatish(self, node: ast.expr, _seen: Optional[Set[str]] = None) -> bool:
        seen = _seen if _seen is not None else set()
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if isinstance(node.func, ast.Name):
                return name in _FLOAT_CALL_NAMES
            return name in _FLOAT_CALL_ATTRS
        if isinstance(node, (ast.BinOp,)):
            return self.floatish(node.left, seen) or self.floatish(node.right, seen)
        if isinstance(node, ast.UnaryOp):
            return self.floatish(node.operand, seen)
        if isinstance(node, ast.IfExp):
            return self.floatish(node.body, seen) or self.floatish(node.orelse, seen)
        if isinstance(node, ast.Starred):
            return self.floatish(node.value, seen)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return any(self.floatish(e, seen) for e in node.elts)
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            return self.floatish(node.elt, seen)
        if isinstance(node, ast.Name):
            if node.id in seen:
                return False
            seen.add(node.id)
            return any(
                self.floatish(v, seen) for v in self.bindings.get(node.id, [])
            )
        return False

    def fractionish(
        self, node: ast.expr, _seen: Optional[Set[str]] = None
    ) -> bool:
        seen = _seen if _seen is not None else set()
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if isinstance(node.func, ast.Name):
                return name in _FRACTION_CALL_NAMES
            return name in _FRACTION_CALL_ATTRS
        if isinstance(node, ast.BinOp):
            return self.fractionish(node.left, seen) or self.fractionish(
                node.right, seen
            )
        if isinstance(node, ast.UnaryOp):
            return self.fractionish(node.operand, seen)
        if isinstance(node, ast.IfExp):
            return self.fractionish(node.body, seen) or self.fractionish(
                node.orelse, seen
            )
        if isinstance(node, ast.Name):
            if node.id in seen:
                return False
            seen.add(node.id)
            return any(
                self.fractionish(v, seen) for v in self.bindings.get(node.id, [])
            )
        return False


class _ScopedRule(Rule):
    """Shared walk: visit expression nodes with per-scope evidence."""

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        cache: Dict[Optional[ast.AST], _Evidence] = {}
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.expr) and not isinstance(
                node, ast.AugAssign
            ):
                continue
            scope = unit.enclosing_function(node)
            if scope not in cache:
                cache[scope] = _Evidence(unit.bindings(scope))
            yield from self.check_node(unit, node, cache[scope])

    def check_node(
        self, unit: ModuleUnit, node: ast.AST, evidence: _Evidence
    ) -> Iterable[Finding]:
        raise NotImplementedError


@register_rule
class BuiltinFloatAccumulation(_ScopedRule):
    """FP001: builtin ``sum()`` / loop ``+=`` accumulation over floats.

    Sequential float accumulation has O(n)-growing worst-case error —
    the exact failure mode this package exists to remove. Outside
    ``baselines/`` (where naive orderings are the measured subject),
    float reductions must go through the kernel layer.
    """

    id = "FP001"
    title = "naive float accumulation (builtin sum / loop +=)"
    rationale = (
        "sequential float accumulation is not faithfully rounded; "
        "error grows with n and with the condition number"
    )
    fixit = (
        "use repro.core.exact_sum / kernel_sum (or a streaming "
        "ExactRunningSum) instead of accumulating floats directly"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return "baselines" not in unit.parts

    def check_node(
        self, unit: ModuleUnit, node: ast.AST, evidence: _Evidence
    ) -> Iterable[Finding]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sum"
            and node.args
            and evidence.floatish(node.args[0])
        ):
            yield self.finding(
                unit, node, "builtin sum() over a float sequence is not exact"
            )
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.op, ast.Add)
            and unit.in_loop(node)
        ):
            target_float = isinstance(
                node.target, ast.Name
            ) and evidence.floatish(node.target)
            if target_float or evidence.floatish(node.value):
                yield self.finding(
                    unit,
                    node,
                    "float '+=' accumulation in a loop is not exact",
                )


@register_rule
class FloatEqualityComparison(_ScopedRule):
    """FP002: ``==`` / ``!=`` with float evidence on either side.

    Float equality is either a bug (round-off makes it flaky) or a
    deliberate bit-identity / exact-zero test — and the latter must say
    so. Use :func:`repro.util.bits.same_float` for intentional
    bit-identity checks, or suppress with a justification explaining
    why the comparison is exact.
    """

    id = "FP002"
    title = "float == / != comparison"
    rationale = (
        "float equality silently encodes a bit-identity assumption; "
        "make the assumption explicit or the comparison robust"
    )
    fixit = (
        "use repro.util.bits.same_float(a, b) for intentional "
        "bit-identity checks (NaN-aware), or suppress with a "
        "justification for exact-by-construction comparisons"
    )

    def check_node(
        self, unit: ModuleUnit, node: ast.AST, evidence: _Evidence
    ) -> Iterable[Finding]:
        if not isinstance(node, ast.Compare):
            return
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(evidence.floatish(o) for o in operands):
            op = "==" if isinstance(node.ops[0], ast.Eq) else "!="
            yield self.finding(
                unit, node, f"float '{op}' comparison relies on exact bits"
            )


@register_rule
class KernelBypassSum(_ScopedRule):
    """FP003: ``math.fsum`` / ``np.sum`` bypassing the kernel layer.

    Both are inexact (``np.sum`` pairwise, ``fsum`` correctly rounded
    only in isolation — not combinable across blocks) and neither
    participates in the kernel protocol's certification/escalation
    story. Outside ``baselines/``, reductions ride the kernels.
    """

    id = "FP003"
    title = "math.fsum / np.sum bypassing the kernel layer"
    rationale = (
        "library reductions sit outside the certified kernel protocol, "
        "so their results carry no exactness guarantee"
    )
    fixit = "route the reduction through repro.kernels (kernel_sum / exact_sum)"

    _NP_NAMES = {"np", "numpy"}
    _NP_ATTRS = {"sum", "nansum", "cumsum"}

    def applies_to(self, unit: ModuleUnit) -> bool:
        return "baselines" not in unit.parts

    def check_node(
        self, unit: ModuleUnit, node: ast.AST, evidence: _Evidence
    ) -> Iterable[Finding]:
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            return
        value = node.func.value
        if not isinstance(value, ast.Name):
            return
        if value.id == "math" and node.func.attr == "fsum":
            yield self.finding(
                unit, node, "math.fsum bypasses the kernel layer"
            )
        elif value.id in self._NP_NAMES and node.func.attr in self._NP_ATTRS:
            yield self.finding(
                unit,
                node,
                f"np.{node.func.attr} is inexact and bypasses the kernel layer",
            )


@register_rule
class KernelBypassInnerProduct(_ScopedRule):
    """FP005: ``np.dot`` / ``np.vdot`` / ``np.linalg.norm`` on floats.

    Inner products and norms are sums in disguise, and numpy's carry
    the same non-reproducible, condition-growing error as ``np.sum`` —
    plus a squaring that can silently under/overflow. The reduction
    layer makes them exact: ``repro.reduce.dot`` / ``repro.reduce.norm2``
    expand through TwoProduct/TwoSquare and fold through the kernels.
    Outside ``baselines/``, inner products ride the reduction ops.
    """

    id = "FP005"
    title = "np.dot / np.vdot / np.linalg.norm bypassing the reduction layer"
    rationale = (
        "numpy inner products are unreproducible sums of rounded "
        "products; the reduction ops compute the same quantities "
        "correctly rounded"
    )
    fixit = (
        "route through repro.reduce (dot / norm2), or the serial "
        "references repro.stats.exact_dot_fraction / exact_norm2"
    )

    _NP_NAMES = {"np", "numpy"}
    _DOT_ATTRS = {"dot", "vdot", "inner"}

    def applies_to(self, unit: ModuleUnit) -> bool:
        return "baselines" not in unit.parts

    def check_node(
        self, unit: ModuleUnit, node: ast.AST, evidence: _Evidence
    ) -> Iterable[Finding]:
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            return
        value = node.func.value
        if isinstance(value, ast.Name):
            if value.id in self._NP_NAMES and node.func.attr in self._DOT_ATTRS:
                yield self.finding(
                    unit,
                    node,
                    f"np.{node.func.attr} is an unreproducible inner "
                    f"product; use repro.reduce.dot",
                )
        elif (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in self._NP_NAMES
            and value.attr == "linalg"
            and node.func.attr == "norm"
        ):
            yield self.finding(
                unit,
                node,
                "np.linalg.norm is an unreproducible reduction; use "
                "repro.reduce.norm2",
            )


@register_rule
class UnguardedFractionNarrowing(_ScopedRule):
    """FP004: ``float(Fraction)`` without a rounding-mode guard.

    ``float()`` on an exact rational rounds *somehow* (nearest-even,
    no mode control, silent overflow to inf). Exact values must narrow
    through :func:`repro.stats.round_fraction` /
    ``repro.core.rounding`` so the rounding step is explicit and
    mode-correct.
    """

    id = "FP004"
    title = "unguarded float(Fraction) narrowing"
    rationale = (
        "float(Fraction) hides the one rounding step the whole "
        "pipeline exists to control"
    )
    fixit = "narrow through repro.stats.round_fraction (mode-aware, overflow-checked)"

    def check_node(
        self, unit: ModuleUnit, node: ast.AST, evidence: _Evidence
    ) -> Iterable[Finding]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
            and evidence.fractionish(node.args[0])
        ):
            yield self.finding(
                unit,
                node,
                "float() narrows an exact Fraction without an explicit "
                "rounding step",
            )
