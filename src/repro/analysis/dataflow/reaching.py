"""Per-function reaching definitions (forward may-analysis).

:class:`ReachingDefs` walks one function body in program order and
records, at the entry of every statement, which definitions of each
local name *may* reach it. Branches merge (union), loop bodies run to
a two-pass fixpoint so loop-carried definitions are visible at the top
of the body, and nested function/class bodies are opaque (they are
separate scopes with their own analyses).

The taint rules consume this instead of flat scope bindings so that a
rebound name (``arr = decode(...)`` ... ``arr = np.zeros(n)``) carries
only the definitions that can actually flow to each use site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Def", "ReachingDefs"]

Env = Dict[str, Tuple["Def", ...]]


@dataclass(frozen=True)
class Def:
    """One definition of one name.

    ``kind`` is how the name was bound; ``value`` is the bound
    expression where one exists (``for`` and ``with`` record the
    iterable / context expression; ``param`` and ``import`` record
    nothing).
    """

    name: str
    kind: str  # param | assign | unpack | aug | for | with | except | import | def | opaque
    value: Optional[ast.expr] = None
    prior: Tuple["Def", ...] = ()


class ReachingDefs:
    """Reaching definitions for one ``FunctionDef``/``AsyncFunctionDef``."""

    def __init__(self, fn: ast.AST) -> None:
        self._at: Dict[int, Env] = {}
        env: Env = {}
        args = fn.args  # type: ignore[attr-defined]
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]:
            env[arg.arg] = (Def(arg.arg, "param"),)
        self._walk_body(fn.body, env)  # type: ignore[attr-defined]

    def at(self, stmt: ast.AST) -> Mapping[str, Tuple[Def, ...]]:
        """Definitions that may reach the entry of *stmt*."""
        return self._at.get(id(stmt), {})

    def defs_of(self, stmt: ast.AST, name: str) -> Tuple[Def, ...]:
        return self.at(stmt).get(name, ())

    # -- the walk --------------------------------------------------------

    def _walk_body(self, body: Iterable[ast.stmt], env: Env) -> Env:
        cur = dict(env)
        for stmt in body:
            self._at[id(stmt)] = dict(cur)
            cur = self._transfer(stmt, cur)
        return cur

    @staticmethod
    def _merge(*envs: Env) -> Env:
        out: Env = {}
        for env in envs:
            for name, defs in env.items():
                if name in out:
                    seen = {id(d) for d in out[name]}
                    out[name] = out[name] + tuple(
                        d for d in defs if id(d) not in seen
                    )
                else:
                    out[name] = defs
        return out

    def _bind(self, env: Env, target: ast.expr, value: Optional[ast.expr], kind: str) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = (Def(target.id, kind, value),)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._bind(env, inner, value, "unpack")
        # Attribute / Subscript stores don't bind a local name.

    def _transfer(self, stmt: ast.stmt, env: Env) -> Env:
        env = dict(env)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._bind(env, target, stmt.value, "assign")
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(env, stmt.target, stmt.value, "assign")
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                prior = env.get(stmt.target.id, ())
                env[stmt.target.id] = (
                    Def(stmt.target.id, "aug", stmt.value, prior),
                )
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            env = self._loop(env, stmt.body, stmt.target, stmt.iter)
            env = self._walk_body(stmt.orelse, env) if stmt.orelse else env
        elif isinstance(stmt, ast.While):
            env = self._loop(env, stmt.body, None, None)
            env = self._walk_body(stmt.orelse, env) if stmt.orelse else env
        elif isinstance(stmt, ast.If):
            then_env = self._walk_body(stmt.body, env)
            else_env = self._walk_body(stmt.orelse, env)
            env = self._merge(then_env, else_env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind(env, item.optional_vars, item.context_expr, "with")
            env = self._walk_body(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            after_body = self._walk_body(stmt.body, env)
            outcomes = [after_body]
            # A handler can run after any prefix of the body: start from
            # the merge of entry and full-body states.
            handler_in = self._merge(env, after_body)
            for handler in stmt.handlers:
                henv = dict(handler_in)
                if handler.name:
                    henv[handler.name] = (Def(handler.name, "except", handler.type),)
                outcomes.append(self._walk_body(handler.body, henv))
            env = self._merge(*outcomes)
            if stmt.orelse:
                env = self._merge(env, self._walk_body(stmt.orelse, after_body))
            if stmt.finalbody:
                env = self._walk_body(stmt.finalbody, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env[stmt.name] = (Def(stmt.name, "def"),)
        elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                env[local] = (Def(local, "import"),)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                env[name] = (Def(name, "opaque"),)
        elif hasattr(ast, "Match") and isinstance(stmt, getattr(ast, "Match")):
            outcomes = [env]
            for case in stmt.cases:  # type: ignore[attr-defined]
                cenv = dict(env)
                for node in ast.walk(case.pattern):
                    capture = getattr(node, "name", None)
                    if isinstance(capture, str):
                        cenv[capture] = (Def(capture, "opaque"),)
                outcomes.append(self._walk_body(case.body, cenv))
            env = self._merge(*outcomes)
        return env

    def _loop(
        self,
        env: Env,
        body: List[ast.stmt],
        target: Optional[ast.expr],
        iterable: Optional[ast.expr],
    ) -> Env:
        """Two-pass fixpoint: loop-carried defs reach the body top."""
        loop_env = dict(env)
        for _ in range(2):
            body_env = dict(loop_env)
            if target is not None:
                self._bind(body_env, target, iterable, "for")
            after = self._walk_body(body, body_env)
            loop_env = self._merge(loop_env, after)
        # Zero-iteration path: the pre-loop env survives too (already
        # merged into loop_env on the first pass).
        return loop_env
