"""Cross-module dataflow engine powering the CC100/CC101/FP100 rules.

Layering:

* :mod:`~repro.analysis.dataflow.callgraph` — :class:`ProjectIndex`,
  the project-wide function/class index and call resolver (registry
  dispatch, ``functools.partial``, ``escalates_to`` chains);
* :mod:`~repro.analysis.dataflow.reaching` — per-function reaching
  definitions (forward may-analysis with branch merge and loop
  fixpoint);
* :mod:`~repro.analysis.dataflow.races` — CC100 (second writer for
  task-owned state) and CC101 (await between two writes of one
  multi-step mutation);
* :mod:`~repro.analysis.dataflow.taint` — FP100 (interprocedural
  exactness taint: decode/endpoint/WAL sources must reach a
  ``fold*``/EFT sanitizer without rounding arithmetic).

Importing this package registers the three rules.
"""

from repro.analysis.dataflow.callgraph import ClassInfo, FunctionInfo, ProjectIndex
from repro.analysis.dataflow.races import SecondWriterRule, TornMutationRule
from repro.analysis.dataflow.reaching import Def, ReachingDefs
from repro.analysis.dataflow.taint import ExactnessTaintRule, TaintEngine

__all__ = [
    "ProjectIndex",
    "FunctionInfo",
    "ClassInfo",
    "ReachingDefs",
    "Def",
    "SecondWriterRule",
    "TornMutationRule",
    "ExactnessTaintRule",
    "TaintEngine",
]
