"""Project-wide call graph over parsed :class:`ModuleUnit` trees.

:class:`ProjectIndex` is the cross-module half of the dataflow engine:
it indexes every top-level function, class, and method in the linted
tree, records each module's import aliases, and resolves call
expressions to :class:`FunctionInfo` targets. Resolution is
best-effort and *sound for the patterns this repository actually
uses* — direct calls, ``self`` / base-chain methods, imported names,
``functools.partial`` bindings, and the two dynamic-dispatch seams the
kernel layer is built on:

* registry dispatch — ``get_kernel("name")`` resolves to the class
  registered under that literal; ``get_kernel(<unknown>)`` resolves to
  *every* registered kernel class (may-alias, so downstream analyses
  stay conservative);
* escalation chains — ``kernel.exact_variant()`` and
  ``get_kernel(x.escalates_to)`` resolve through the class's
  (possibly inherited) ``escalates_to`` registry name.

Unresolvable calls resolve to the empty set: downstream rules give
unknown targets the benefit of the doubt, keeping precision over
recall (every reported finding is worth reading).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.core import ModuleUnit

__all__ = ["FunctionInfo", "ClassInfo", "ProjectIndex"]

#: Spawn wrappers that run a coroutine as an independent task.
TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: Registry accessor names treated as kernel dynamic dispatch.
_REGISTRY_GETTERS = frozenset({"get_kernel"})

#: Method that returns ``get_kernel(self.escalates_to)`` (kernels/base.py).
_ESCALATION_METHODS = frozenset({"exact_variant"})


@dataclass
class FunctionInfo:
    """One indexed function or method definition."""

    qualname: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    unit: "ModuleUnit"
    class_qualname: Optional[str] = None
    is_async: bool = False

    @property
    def is_method(self) -> bool:
        return self.class_qualname is not None


@dataclass
class ClassInfo:
    """One indexed class definition."""

    qualname: str
    name: str
    node: ast.ClassDef
    unit: "ModuleUnit"
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Registry name when decorated with ``@register_kernel``.
    kernel_name: Optional[str] = None
    #: Own ``escalates_to = "name"`` class attribute, if any.
    escalates_to: Optional[str] = None
    #: ``self.X = SomeClass(...)`` attribute types seen in any method.
    attr_class_names: Dict[str, Set[str]] = field(default_factory=dict)


def _str_const(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _callable_name(func: ast.expr) -> Optional[str]:
    """Terminal name of a call target: ``f`` and ``a.b.f`` both -> ``f``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class ProjectIndex:
    """Call-graph index over every unit in one lint run."""

    def __init__(self, units: Sequence["ModuleUnit"]) -> None:
        self.units: List["ModuleUnit"] = list(units)
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.kernels: Dict[str, ClassInfo] = {}
        #: ``(module_name, local_alias) -> dotted target``
        self.imports: Dict[Tuple[str, str], str] = {}
        for unit in self.units:
            self._index_unit(unit)
        self._method_cache: Dict[Tuple[str, str], Optional[FunctionInfo]] = {}

    # -- construction ----------------------------------------------------

    def _index_unit(self, unit: "ModuleUnit") -> None:
        mod = unit.module_name
        is_package = unit.display_path.replace("\\", "/").endswith("__init__.py")
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ImportFrom):
                base = self._import_base(unit, node, is_package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.imports[(mod, local)] = target
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self.imports[(mod, local)] = target
        for stmt in unit.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(unit, stmt, class_info=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(unit, stmt)

    def _import_base(
        self, unit: "ModuleUnit", node: ast.ImportFrom, is_package: bool
    ) -> Optional[str]:
        if node.level == 0:
            return node.module or ""
        parts = list(unit.parts)
        if not parts:
            return None
        # Level 1 inside a package __init__ is the package itself; inside
        # a plain module it is the containing package.
        drop = node.level - (1 if is_package else 0)
        if drop > len(parts):
            return None
        base_parts = parts[: len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _add_function(
        self,
        unit: "ModuleUnit",
        node: ast.AST,
        class_info: Optional[ClassInfo],
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        if class_info is not None:
            qualname = f"{class_info.qualname}.{name}"
        else:
            qualname = f"{unit.module_name}.{name}"
        info = FunctionInfo(
            qualname=qualname,
            name=name,
            node=node,
            unit=unit,
            class_qualname=class_info.qualname if class_info else None,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        self.functions[qualname] = info
        if class_info is not None:
            class_info.methods[name] = info
        return info

    def _add_class(self, unit: "ModuleUnit", node: ast.ClassDef) -> None:
        qualname = f"{unit.module_name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            name=node.name,
            node=node,
            unit=unit,
            base_names=[b for b in map(_callable_name, node.bases) if b],
        )
        self.classes[qualname] = info
        self.classes_by_name.setdefault(node.name, []).append(info)
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if _callable_name(target) == "register_kernel":
                info.kernel_name = ""  # resolved below once `name` is seen
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(unit, stmt, class_info=info)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target_name = (
                    stmt.targets[0].id
                    if isinstance(stmt.targets[0], ast.Name)
                    else None
                )
                self._note_class_attr(info, target_name, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self._note_class_attr(info, stmt.target.id, stmt.value)
        if info.kernel_name == "":
            info.kernel_name = None
        if info.kernel_name:
            self.kernels[info.kernel_name] = info
        for method in info.methods.values():
            self._scan_self_attr_types(info, method)

    def _note_class_attr(
        self, info: ClassInfo, name: Optional[str], value: Optional[ast.expr]
    ) -> None:
        if name == "name" and info.kernel_name == "":
            literal = _str_const(value)
            if literal:
                info.kernel_name = literal
        elif name == "escalates_to":
            info.escalates_to = _str_const(value)

    def _scan_self_attr_types(self, info: ClassInfo, method: FunctionInfo) -> None:
        """Record ``self.X = SomeClass(...)`` bindings for receiver typing."""
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Call)
                ):
                    cls_name = _callable_name(node.value.func)
                    if cls_name and (
                        cls_name in self.classes_by_name
                        or cls_name[:1].isupper()
                    ):
                        info.attr_class_names.setdefault(target.attr, set()).add(
                            cls_name
                        )

    # -- resolution ------------------------------------------------------

    def resolve_method(
        self, cls: ClassInfo, name: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """Find ``name`` on *cls* or its statically-known base chain."""
        key = (cls.qualname, name)
        if key in self._method_cache:
            return self._method_cache[key]
        seen = _seen if _seen is not None else set()
        if cls.qualname in seen:
            return None
        seen.add(cls.qualname)
        found = cls.methods.get(name)
        if found is None:
            for base in self._base_classes(cls):
                found = self.resolve_method(base, name, seen)
                if found is not None:
                    break
        self._method_cache[key] = found
        return found

    def _base_classes(self, cls: ClassInfo) -> List[ClassInfo]:
        out: List[ClassInfo] = []
        for base_name in cls.base_names:
            target = self.imports.get((cls.unit.module_name, base_name))
            if target is not None and target in self.classes:
                out.append(self.classes[target])
                continue
            same_module = self.classes.get(f"{cls.unit.module_name}.{base_name}")
            if same_module is not None:
                out.append(same_module)
                continue
            candidates = self.classes_by_name.get(base_name, [])
            if len(candidates) == 1:
                out.append(candidates[0])
        return out

    def escalation_targets(self, cls: ClassInfo) -> List[ClassInfo]:
        """Kernel class(es) ``cls.escalates_to`` names, walking bases."""
        cur: Optional[ClassInfo] = cls
        seen: Set[str] = set()
        while cur is not None and cur.qualname not in seen:
            seen.add(cur.qualname)
            if cur.escalates_to is not None:
                target = self.kernels.get(cur.escalates_to)
                return [target] if target is not None else []
            bases = self._base_classes(cur)
            cur = bases[0] if bases else None
        return []

    def infer_classes(
        self,
        unit: "ModuleUnit",
        scope: Optional[ast.AST],
        cls: Optional[ClassInfo],
        expr: ast.expr,
        _depth: int = 0,
    ) -> List[ClassInfo]:
        """Best-effort class(es) an expression evaluates to."""
        if _depth > 6:
            return []
        if isinstance(expr, ast.Name):
            if expr.id == "self" and cls is not None:
                return [cls]
            out: List[ClassInfo] = []
            for bound in self._name_bindings(unit, scope, expr.id):
                out.extend(self.infer_classes(unit, scope, cls, bound, _depth + 1))
            return out
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and cls is not None
            ):
                out = []
                for name in cls.attr_class_names.get(expr.attr, ()):
                    out.extend(self._classes_named(unit, name))
                return out
            return []
        if isinstance(expr, ast.Await):
            return self.infer_classes(unit, scope, cls, expr.value, _depth + 1)
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Call):
                # `get_kernel(name)()`: instantiating whatever class the
                # inner call resolves to yields that class's instances.
                return self.infer_classes(unit, scope, cls, expr.func, _depth + 1)
            callee = _callable_name(expr.func)
            if callee in _REGISTRY_GETTERS:
                return self._registry_dispatch(unit, scope, cls, expr, _depth)
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _ESCALATION_METHODS
            ):
                out = []
                for recv in self.infer_classes(
                    unit, scope, cls, expr.func.value, _depth + 1
                ):
                    out.extend(self.escalation_targets(recv))
                return out
            if callee is not None:
                return self._classes_named(unit, callee)
        return []

    def _registry_dispatch(
        self,
        unit: "ModuleUnit",
        scope: Optional[ast.AST],
        cls: Optional[ClassInfo],
        call: ast.Call,
        depth: int,
    ) -> List[ClassInfo]:
        """``get_kernel(arg)``: literal -> that class, else every kernel."""
        arg = call.args[0] if call.args else None
        literal = _str_const(arg)
        if literal is not None:
            target = self.kernels.get(literal)
            return [target] if target is not None else []
        if isinstance(arg, ast.Attribute) and arg.attr == "escalates_to":
            out: List[ClassInfo] = []
            for recv in self.infer_classes(unit, scope, cls, arg.value, depth + 1):
                out.extend(self.escalation_targets(recv))
            return out
        return sorted(self.kernels.values(), key=lambda c: c.qualname)

    def _classes_named(self, unit: "ModuleUnit", name: str) -> List[ClassInfo]:
        target = self.imports.get((unit.module_name, name))
        if target is not None and target in self.classes:
            return [self.classes[target]]
        same_module = self.classes.get(f"{unit.module_name}.{name}")
        if same_module is not None:
            return [same_module]
        candidates = self.classes_by_name.get(name, [])
        return [candidates[0]] if len(candidates) == 1 else []

    def _name_bindings(
        self, unit: "ModuleUnit", scope: Optional[ast.AST], name: str
    ) -> List[ast.expr]:
        bound = unit.bindings(scope).get(name)
        if bound:
            return bound
        if scope is not None:
            return unit.bindings(None).get(name, [])
        return []

    def resolve_call(
        self,
        unit: "ModuleUnit",
        scope: Optional[ast.AST],
        cls: Optional[ClassInfo],
        call: ast.Call,
    ) -> List[FunctionInfo]:
        """Resolve one call expression to its possible targets."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_name_callable(unit, scope, cls, func.id, set())
        if isinstance(func, ast.Attribute):
            targets: List[FunctionInfo] = []
            seen: Set[str] = set()
            for recv in self.infer_classes(unit, scope, cls, func.value):
                method = self.resolve_method(recv, func.attr)
                if method is not None and method.qualname not in seen:
                    seen.add(method.qualname)
                    targets.append(method)
            if not targets and isinstance(func.value, ast.Name):
                # Module-attribute call: `codec.decode_batch(...)`.
                module = self.imports.get((unit.module_name, func.value.id))
                if module is not None:
                    info = self.functions.get(f"{module}.{func.attr}")
                    if info is not None:
                        targets.append(info)
            return targets
        return []

    def _resolve_name_callable(
        self,
        unit: "ModuleUnit",
        scope: Optional[ast.AST],
        cls: Optional[ClassInfo],
        name: str,
        seen: Set[str],
    ) -> List[FunctionInfo]:
        key = f"{unit.module_name}:{name}"
        if key in seen:
            return []
        seen.add(key)
        # Local binding first: partial(...) aliases and renames.
        for bound in self._name_bindings(unit, scope, name):
            if isinstance(bound, ast.Call):
                bound_name = _callable_name(bound.func)
                if bound_name == "partial" and bound.args:
                    inner = bound.args[0]
                    if isinstance(inner, ast.Name):
                        return self._resolve_name_callable(
                            unit, scope, cls, inner.id, seen
                        )
                    if isinstance(inner, ast.Attribute):
                        fake = ast.Call(func=inner, args=[], keywords=[])
                        ast.copy_location(fake, bound)
                        return self.resolve_call(unit, scope, cls, fake)
            elif isinstance(bound, ast.Name):
                return self._resolve_name_callable(
                    unit, scope, cls, bound.id, seen
                )
        own = self.functions.get(f"{unit.module_name}.{name}")
        if own is not None:
            return [own]
        target = self.imports.get((unit.module_name, name))
        if target is not None and target in self.functions:
            return [self.functions[target]]
        return []

    # -- convenience for tests and rules ---------------------------------

    def call_edges(self, fn: FunctionInfo) -> FrozenSet[str]:
        """Qualnames of every resolvable callee inside *fn*."""
        cls = self.classes.get(fn.class_qualname) if fn.class_qualname else None
        out: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                for target in self.resolve_call(fn.unit, fn.node, cls, node):
                    out.add(target.qualname)
        return frozenset(out)
