"""FP100: interprocedural exactness taint for the ingest planes.

The repository's central claim is that every ingested bit reaches a
superaccumulator *unrounded*: the serve endpoints, the codec decoders,
and WAL replay hand float64 payloads to ``SumKernel.fold*`` / the EFT
expansions without any intermediate rounding arithmetic. PRs 8–9
established that as a test-suite property; this rule makes it a
machine-checked tree-wide invariant.

Model (classic taint with three label sets):

* **sources** — codec/protocol decoders (``decode_batch``,
  ``parse_payload``, ``read_wal``, ``np.frombuffer``, ...) and serve
  endpoint payloads (``request[...]`` / ``request.get(...)`` where
  ``request`` is a parameter);
* **propagation** — exact, bit-preserving transforms (``np.array``,
  ``np.concatenate``, slicing, ``ensure_float64_array``, attribute
  access except size/shape-style metadata, tuple unpacking, reaching
  definitions across statements);
* **sanitizers** — the certified exact seams: ``fold*`` / ``add_*`` /
  ``merge`` / the EFT expansion vectors / WAL ``append*`` / codec
  ``encode*``. A call into any trusted layer (kernels, core,
  adaptive, codec, util, ...) is also never a finding: those layers
  carry their own certificates.

A finding is a *rounding sink* reached by tainted data: a ``+ - * /``
``BinOp``, an ``np.*``/``math.fsum`` reduction, or a call whose
resolved callee (per the project call graph) applies such arithmetic
to the corresponding parameter before any fold. Callee behavior is
summarized by a fixpoint over ``(returns_tainted, param_to_return,
param_rounds)`` per function in the swept packages, so the taint is
genuinely interprocedural. String concatenation and f-string interiors
are exempt (no float rounding), and anything the engine cannot prove
stays silent — precision over recall.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, ModuleUnit, Rule, register_rule
from repro.analysis.dataflow.callgraph import FunctionInfo, ProjectIndex
from repro.analysis.dataflow.reaching import Def, ReachingDefs

__all__ = ["ExactnessTaintRule", "TaintEngine"]

_SCOPED_PACKAGES = ("serve", "cluster", "reduce")

#: Calls producing exact ingested payloads (the taint sources).
SOURCE_CALLS = frozenset(
    {
        "decode",
        "decode_batch",
        "decode_reduce_batch",
        "decode_snapshot",
        "decode_wal_any",
        "decode_wal_record",
        "decode_wal_reduce",
        "decode_payload",
        "parse_payload",
        "read_frame",
        "read_wal",
        "iter_wal",
        "frombuffer",
        "decode_bytes_field",
        "batch_wire_body",
        "reduce_batch_wire_bodies",
        "stream_from_bytes",
        "from_bytes",
        "from_wire",
        "feed",
    }
)

#: Exact transforms: the result carries its arguments' taint.
PRESERVING_CALLS = frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "asfortranarray",
        "copy",
        "astype",
        "reshape",
        "ravel",
        "flatten",
        "view",
        "tolist",
        "concatenate",
        "array_split",
        "split",
        "stack",
        "hstack",
        "vstack",
        "atleast_1d",
        "float64",
        "bytes",
        "bytearray",
        "memoryview",
        "float",
        "list",
        "tuple",
        "dict",
        "set",
        "sorted",
        "reversed",
        "zip",
        "iter",
        "next",
        "min",
        "max",
        "abs",
        "negative",
        "ensure_float64_array",
        "wait_for",
        "shield",
        "gather",
    }
)

#: Certified exact seams: tainted arguments are *consumed* here.
SANITIZER_CALLS = frozenset(
    {
        "fold",
        "fold_into",
        "fold_exact",
        "fold_scalar",
        "fold_stream",
        "add",
        "add_array",
        "add_scalar",
        "kernel_sum",
        "exact_sum",
        "run_reduction",
        "expand",
        "check_domain",
        "merge",
        "merge_into",
        "scatter",
        "scatter_reduce",
        "add_batch",
        "add_reduce_batch",
        "append",
        "append_reduce",
        "append_blob",
        "appendleft",
        "extend",
        "put",
        "put_nowait",
        "send",
        "write",
        "publish",
        "encode",
        "encode_batch",
        "encode_reduce_batch",
        "encode_frame",
        "encode_batch_frame",
        "encode_reduce_batch_frame",
        "encode_wal_record",
        "encode_wal_reduce",
        "encode_snapshot",
        "encode_bytes_field",
        "two_sum_vec",
        "two_product_vec",
        "two_square_vec",
        "split_floats_vec",
        "from_float",
        "record_wire_frame",
        "state_to_wire",
        "dumps",
    }
)

#: Attribute reads that extract metadata, not the float payload.
METADATA_ATTRS = frozenset(
    {"size", "shape", "ndim", "dtype", "nbytes", "itemsize"}
)

#: Request fields that carry the float payload. Metadata fields
#: (stream names, seqs, rounding modes, ddof, ids) are control plane:
#: arithmetic on them is validation, not payload rounding.
PAYLOAD_KEYS = frozenset(
    {
        "values",
        "values2",
        "value",
        "payload",
        "payload_f64",
        "payload_f64_y",
        "state",
        "blob",
        "snapshot",
        "data",
        "b64",
    }
)

#: ``np.<name>`` / ``math.<name>`` reductions that round.
MODULE_REDUCTIONS = frozenset(
    {
        "sum",
        "nansum",
        "cumsum",
        "dot",
        "vdot",
        "inner",
        "prod",
        "trace",
        "einsum",
        "norm",
        "mean",
        "nanmean",
        "average",
        "std",
        "var",
        "fsum",
    }
)

#: ``tainted_array.<name>(...)`` method reductions.
ARRAY_REDUCTIONS = frozenset({"sum", "dot", "prod", "cumsum", "mean", "std", "var"})

_ROUNDING_BINOPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow, ast.MatMult)


def _terminal_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _receiver_root(func: ast.expr) -> Optional[str]:
    """Leftmost name of an attribute chain: ``np.linalg.norm`` -> ``np``."""
    node = func
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _stringish(node: ast.expr) -> bool:
    return isinstance(node, ast.JoinedStr) or (
        isinstance(node, ast.Constant) and isinstance(node.value, (str, bytes))
    )


@dataclass
class FunctionSummary:
    """Interprocedural facts about one function in the swept packages."""

    params: List[str] = field(default_factory=list)
    returns_tainted: bool = False
    param_to_return: Set[int] = field(default_factory=set)
    param_rounds: Set[int] = field(default_factory=set)


@dataclass(frozen=True)
class _Sink:
    node: ast.AST
    label: str
    what: str


class _FunctionAnalysis:
    """One intraprocedural taint pass over one function.

    ``seed_sources`` turns source calls / request payloads into taint;
    ``seed_params`` taints the named parameters instead (the summary
    mode). The pass records every rounding sink reached by taint and
    whether a ``return`` value carries it.
    """

    def __init__(
        self,
        engine: "TaintEngine",
        info: FunctionInfo,
        *,
        seed_sources: bool,
        seed_params: Set[str],
    ) -> None:
        self.engine = engine
        self.info = info
        self.seed_sources = seed_sources
        self.seed_params = seed_params
        self.reaching = engine.reaching_for(info)
        self._memo: Dict[int, Optional[str]] = {}
        self._stmt_of: Dict[int, ast.stmt] = {}
        self._comp_iters: Dict[str, List[ast.expr]] = {}
        self.sinks: List[_Sink] = []
        self._sunk: Set[int] = set()
        self.return_tainted = False
        self._run()

    # -- driving ---------------------------------------------------------

    def _run(self) -> None:
        body = self.info.node.body  # type: ignore[attr-defined]
        # Index every statement's expressions first: a loop-carried
        # reaching definition can point at a *later* statement's value.
        for stmt in body:
            self._index_stmt(stmt)
        for stmt in body:
            self._scan_stmt(stmt)

    def _index_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        self._index_exprs(stmt)
        for node in self._own_nodes(stmt):
            if isinstance(node, ast.comprehension):
                for name in self._target_names(node.target):
                    self._comp_iters.setdefault(name, []).append(node.iter)
        for child in self._child_stmts(stmt):
            self._index_stmt(child)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # separate scope
        for node in self._own_nodes(stmt):
            if isinstance(node, ast.BinOp):
                self._check_binop(node, stmt)
            elif isinstance(node, ast.Call):
                self._check_call_sink(node, stmt)
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.op, _ROUNDING_BINOPS
        ):
            taint = self._taint(stmt.value, stmt)
            if taint is None and isinstance(stmt.target, ast.Name):
                load = ast.Name(id=stmt.target.id, ctx=ast.Load())
                ast.copy_location(load, stmt.target)
                self._stmt_of[id(load)] = stmt
                taint = self._taint(load, stmt)
            if taint is not None:
                self._sink(stmt, taint, "in-place rounding accumulation")
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            if self._taint(stmt.value, stmt) is not None:
                self.return_tainted = True
        for child in self._child_stmts(stmt):
            self._scan_stmt(child)

    def _child_stmts(self, stmt: ast.stmt) -> Iterable[ast.stmt]:
        for field_name, value in ast.iter_fields(stmt):
            if isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.stmt):
                        yield item
                    elif isinstance(item, ast.excepthandler):
                        yield from item.body
                    elif hasattr(ast, "match_case") and isinstance(
                        item, getattr(ast, "match_case")
                    ):
                        yield from item.body

    def _own_nodes(self, stmt: ast.stmt) -> Iterable[ast.AST]:
        """Expression nodes belonging to *stmt* itself (not sub-statements)."""

        def visit(node: ast.AST) -> Iterable[ast.AST]:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (
                        ast.stmt,
                        ast.FunctionDef,
                        ast.AsyncFunctionDef,
                        ast.ClassDef,
                        ast.Lambda,
                    ),
                ):
                    continue
                yield child
                yield from visit(child)

        return visit(stmt)

    def _index_exprs(self, stmt: ast.stmt) -> None:
        for node in self._own_nodes(stmt):
            self._stmt_of[id(node)] = stmt

    @staticmethod
    def _target_names(target: ast.expr) -> Iterable[str]:
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from _FunctionAnalysis._target_names(elt)

    # -- sinks -----------------------------------------------------------

    def _sink(self, node: ast.AST, label: str, what: str) -> None:
        if id(node) in self._sunk:
            return
        self._sunk.add(id(node))
        self.sinks.append(_Sink(node=node, label=label, what=what))

    def _check_binop(self, node: ast.BinOp, stmt: ast.stmt) -> None:
        if not isinstance(node.op, _ROUNDING_BINOPS):
            return
        if self._string_typed(node.left, stmt) or self._string_typed(
            node.right, stmt
        ):
            return  # string/bytes/path concatenation never rounds floats
        taint = self._taint(node.left, stmt) or self._taint(node.right, stmt)
        if taint is not None:
            self._sink(node, taint, "rounding arithmetic")

    def _string_typed(self, node: ast.expr, stmt: ast.stmt) -> bool:
        """Evidence the operand is a string (so ``+`` is concatenation)."""
        if _stringish(node):
            return True
        if isinstance(node, ast.Call):
            return _terminal_name(node.func) in ("str", "repr", "format", "join")
        if isinstance(node, ast.BinOp):
            return self._string_typed(node.left, stmt) or self._string_typed(
                node.right, stmt
            )
        if isinstance(node, ast.Name):
            defs = self.reaching.defs_of(stmt, node.id)
            values = [
                d.value
                for d in defs
                if d.kind in ("assign", "unpack", "aug")
            ]
            if defs and values and all(
                v is not None and _stringish(v) for v in values
            ):
                return True
            if not defs:
                # Module-level constant, e.g. `stream + SUFFIX`.
                bound = self.info.unit.bindings(None).get(node.id)
                if bound and all(_stringish(v) for v in bound):
                    return True
        return False

    def _check_call_sink(self, call: ast.Call, stmt: ast.stmt) -> None:
        name = _terminal_name(call.func)
        if name is None or name in SANITIZER_CALLS:
            return
        root = (
            _receiver_root(call.func)
            if isinstance(call.func, ast.Attribute)
            else None
        )
        if name in MODULE_REDUCTIONS and root in ("np", "numpy", "math"):
            for arg in call.args:
                taint = self._taint(arg, stmt)
                if taint is not None:
                    self._sink(call, taint, f"{root}.{name}() reduction")
                    return
        if (
            name in ARRAY_REDUCTIONS
            and isinstance(call.func, ast.Attribute)
            and self._taint(call.func.value, stmt) is not None
        ):
            self._sink(
                call,
                self._taint(call.func.value, stmt) or "ingested data",
                f".{name}() reduction",
            )
            return
        # Interprocedural: does a resolved callee round this argument?
        targets = self.engine.resolve(self.info, call)
        for target in targets:
            summary = self.engine.summary_of(target)
            if summary is None or not summary.param_rounds:
                continue
            for pos, arg in self._map_args(target, summary, call):
                if pos in summary.param_rounds:
                    taint = self._taint(arg, stmt)
                    if taint is not None:
                        self._sink(
                            call,
                            taint,
                            f"call into '{target.qualname}', which applies "
                            f"rounding arithmetic to this argument",
                        )
                        return

    @staticmethod
    def _map_args(
        target: FunctionInfo, summary: FunctionSummary, call: ast.Call
    ) -> Iterable[Tuple[int, ast.expr]]:
        offset = 1 if target.is_method else 0
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            yield i + offset, arg
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in summary.params:
                yield summary.params.index(kw.arg), kw.value

    # -- taint evaluation ------------------------------------------------

    def _taint(self, expr: ast.expr, stmt: ast.stmt) -> Optional[str]:
        key = id(expr)
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = None  # cycle guard: assume clean while computing
        result = self._taint_inner(expr, stmt)
        self._memo[key] = result
        return result

    def _taint_inner(self, expr: ast.expr, stmt: ast.stmt) -> Optional[str]:
        if isinstance(expr, ast.Name):
            return self._name_taint(expr.id, stmt)
        if isinstance(expr, ast.Attribute):
            if expr.attr in METADATA_ATTRS:
                return None
            return self._taint(expr.value, stmt)
        if isinstance(expr, ast.Subscript):
            if self._is_request_param(expr.value, stmt) and self._payload_key(
                expr.slice
            ):
                return f"request payload (line {expr.lineno})"
            base = self._taint(expr.value, stmt)
            if base is not None:
                return base
            return self._taint(expr.slice, stmt)
        if isinstance(expr, ast.Call):
            return self._call_taint(expr, stmt)
        if isinstance(expr, (ast.Await, ast.Starred, ast.UnaryOp)):
            inner = expr.value if not isinstance(expr, ast.UnaryOp) else expr.operand
            return self._taint(inner, stmt)
        if isinstance(expr, ast.BinOp):
            return self._taint(expr.left, stmt) or self._taint(expr.right, stmt)
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                taint = self._taint(value, stmt)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.IfExp):
            return self._taint(expr.body, stmt) or self._taint(expr.orelse, stmt)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                taint = self._taint(elt, stmt)
                if taint is not None:
                    return taint
            return None
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    taint = self._taint(value, stmt)
                    if taint is not None:
                        return taint
            return None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._taint(expr.elt, stmt)
        if isinstance(expr, ast.NamedExpr):
            return self._taint(expr.value, stmt)
        return None

    def _name_taint(self, name: str, stmt: ast.stmt) -> Optional[str]:
        defs = self.reaching.defs_of(stmt, name)
        if not defs:
            for iter_expr in self._comp_iters.get(name, ()):
                taint = self._taint(iter_expr, self._stmt_of.get(id(iter_expr), stmt))
                if taint is not None:
                    return taint
            return None
        for d in defs:
            taint = self._def_taint(name, d)
            if taint is not None:
                return taint
        return None

    def _def_taint(self, name: str, d: Def) -> Optional[str]:
        if d.kind == "param":
            if name in self.seed_params:
                return f"parameter '{name}'"
            return None
        if d.kind in ("import", "def", "except", "opaque"):
            return None
        if d.value is None:
            return None
        value_stmt = self._stmt_of.get(id(d.value))
        if value_stmt is None:
            return None
        taint = self._taint(d.value, value_stmt)
        if taint is None and d.kind == "aug":
            for prior in d.prior:
                taint = self._def_taint(name, prior)
                if taint is not None:
                    break
        return taint

    @staticmethod
    def _payload_key(key: ast.expr) -> bool:
        """Whether a request-field key names (or may name) float payload."""
        if isinstance(key, ast.Constant):
            return key.value in PAYLOAD_KEYS
        return True  # dynamic key: stay conservative

    def _is_request_param(self, expr: ast.expr, stmt: ast.stmt) -> bool:
        if not self.seed_sources:
            return False
        if not isinstance(expr, ast.Name) or expr.id != "request":
            return False
        defs = self.reaching.defs_of(stmt, expr.id)
        return any(d.kind == "param" for d in defs)

    def _call_taint(self, call: ast.Call, stmt: ast.stmt) -> Optional[str]:
        name = _terminal_name(call.func)
        if name is None:
            return None
        if name in ("get", "pop") and isinstance(call.func, ast.Attribute):
            if self._is_request_param(call.func.value, stmt):
                if call.args and self._payload_key(call.args[0]):
                    return f"request payload (line {call.lineno})"
                return None
            return self._taint(call.func.value, stmt)
        if name == "to_thread":
            if call.args:
                fn = call.args[0]
                fn_name = _terminal_name(fn) if not isinstance(fn, ast.Call) else None
                if self.seed_sources and fn_name in SOURCE_CALLS:
                    return f"{fn_name}() (line {call.lineno})"
                for arg in call.args[1:]:
                    taint = self._taint(arg, stmt)
                    if taint is not None:
                        return taint
            return None
        if self.seed_sources and name in SOURCE_CALLS:
            return f"{name}() (line {call.lineno})"
        if name in SANITIZER_CALLS:
            return None
        if name in PRESERVING_CALLS:
            for arg in call.args:
                taint = self._taint(arg, stmt)
                if taint is not None:
                    return taint
            if isinstance(call.func, ast.Attribute):
                return self._taint(call.func.value, stmt)
            return None
        # Resolved callees: summaries say whether taint flows through.
        for target in self.engine.resolve(self.info, call):
            summary = self.engine.summary_of(target)
            if summary is None:
                continue
            if self.seed_sources and summary.returns_tainted:
                return f"'{target.qualname}()' (line {call.lineno})"
            if summary.param_to_return:
                for pos, arg in self._map_args(target, summary, call):
                    if pos in summary.param_to_return:
                        taint = self._taint(arg, stmt)
                        if taint is not None:
                            return taint
        return None


class TaintEngine:
    """Project-wide FP100 driver: summaries fixpoint + per-unit findings."""

    _MAX_ROUNDS = 8

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self._reaching: Dict[str, ReachingDefs] = {}
        self._summaries: Dict[str, FunctionSummary] = {}
        self._build_summaries()

    # -- shared helpers --------------------------------------------------

    def reaching_for(self, info: FunctionInfo) -> ReachingDefs:
        cached = self._reaching.get(info.qualname)
        if cached is None:
            cached = ReachingDefs(info.node)
            self._reaching[info.qualname] = cached
        return cached

    def resolve(self, info: FunctionInfo, call: ast.Call) -> List[FunctionInfo]:
        cls = (
            self.index.classes.get(info.class_qualname)
            if info.class_qualname
            else None
        )
        return self.index.resolve_call(info.unit, info.node, cls, call)

    def summary_of(self, info: FunctionInfo) -> Optional[FunctionSummary]:
        return self._summaries.get(info.qualname)

    @staticmethod
    def _scoped_unit(unit: ModuleUnit) -> bool:
        return any(unit.in_package(pkg) for pkg in _SCOPED_PACKAGES)

    @staticmethod
    def _param_names(info: FunctionInfo) -> List[str]:
        args = info.node.args  # type: ignore[attr-defined]
        return [a.arg for a in [*args.posonlyargs, *args.args]]

    # -- summaries -------------------------------------------------------

    def _build_summaries(self) -> None:
        scoped = [
            info
            for info in self.index.functions.values()
            if self._scoped_unit(info.unit)
        ]
        for info in scoped:
            self._summaries[info.qualname] = FunctionSummary(
                params=self._param_names(info)
            )
        for _ in range(self._MAX_ROUNDS):
            changed = False
            for info in scoped:
                summary = self._summaries[info.qualname]
                probe = _FunctionAnalysis(
                    self, info, seed_sources=True, seed_params=set()
                )
                if probe.return_tainted and not summary.returns_tainted:
                    summary.returns_tainted = True
                    changed = True
                for pos, pname in enumerate(summary.params):
                    if pname == "self":
                        continue
                    if (
                        pos in summary.param_rounds
                        and pos in summary.param_to_return
                    ):
                        continue
                    analysis = _FunctionAnalysis(
                        self, info, seed_sources=False, seed_params={pname}
                    )
                    if analysis.sinks and pos not in summary.param_rounds:
                        summary.param_rounds.add(pos)
                        changed = True
                    if (
                        analysis.return_tainted
                        and pos not in summary.param_to_return
                    ):
                        summary.param_to_return.add(pos)
                        changed = True
            if not changed:
                break

    # -- findings --------------------------------------------------------

    def findings_for_unit(self, unit: ModuleUnit) -> List[Tuple[ast.AST, str]]:
        out: List[Tuple[ast.AST, str]] = []
        for info in sorted(
            self.index.functions.values(), key=lambda f: f.qualname
        ):
            if info.unit is not unit:
                continue
            analysis = _FunctionAnalysis(
                self, info, seed_sources=True, seed_params=set()
            )
            for sink in analysis.sinks:
                out.append(
                    (
                        sink.node,
                        f"{sink.what} on exact ingest data from "
                        f"{sink.label} before any fold in "
                        f"'{info.qualname}'",
                    )
                )
        return out


def engine_for(index: ProjectIndex) -> TaintEngine:
    """One cached :class:`TaintEngine` per project index."""
    cached = getattr(index, "_taint_engine", None)
    if cached is None:
        cached = TaintEngine(index)
        index._taint_engine = cached  # type: ignore[attr-defined]
    return cached


@register_rule
class ExactnessTaintRule(Rule):
    id = "FP100"
    title = "ingested value rounded before reaching a fold"
    severity = "error"
    rationale = (
        "Exactness is end-to-end or it is nothing: one rounding BinOp "
        "between a decoder and the superaccumulator silently voids the "
        "reproducible-sum certificate for every downstream consumer."
    )
    fixit = (
        "hand the raw payload to SumKernel.fold*/the EFT expansion and "
        "do arithmetic on the certified result instead"
    )
    requires_project = True

    def applies_to(self, unit: ModuleUnit) -> bool:
        return TaintEngine._scoped_unit(unit)

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        index = unit.context.index
        if index is None:
            return
        engine = engine_for(index)
        for node, message in engine.findings_for_unit(unit):
            yield self.finding(unit, node, message)
