"""CC100/CC101: static asyncio race detection for serve/ and cluster/.

Both rules machine-check the concurrency discipline the serving and
cluster planes are built on (single-writer shard ownership from PR 2,
WAL-before-fold atomicity from PR 7) instead of spot-checking names
the way CC002 does.

**CC100 — second writer for task-owned state.** A class that spawns a
long-lived coroutine (``asyncio.create_task(self._run())``) hands that
task ownership of the attributes it writes. The rule computes the
spawned task's *region* — every method transitively reachable from the
task root through ``self`` calls — collects the attributes the region
assigns, and flags any assignment to those attributes from a method
outside the region (``__init__`` excluded: construction happens before
the task exists). Two disjoint task regions writing the same attribute
are flagged the same way.

**CC101 — torn multi-step state mutation.** Inside one async method,
two writes to instance state separated by an ``await`` let every other
task on the loop observe the intermediate state. The walk is
happens-before-aware in statement order: an ``Assign`` whose value
*contains* the await (``self.x = await f()``) orders the await before
the write, so it never pairs with itself; loop bodies are traversed
twice so a loop-carried write→await→write (the WAL-replay shape) is
caught.

Both rules are intra-class, evidence-based, and scoped to
``repro.serve`` / ``repro.cluster`` — the only packages with task
concurrency.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleUnit, Rule, register_rule
from repro.analysis.dataflow.callgraph import TASK_SPAWNERS

__all__ = ["SecondWriterRule", "TornMutationRule"]

_SCOPED_PACKAGES = ("serve", "cluster")


def _scoped(unit: ModuleUnit) -> bool:
    return any(unit.in_package(pkg) for pkg in _SCOPED_PACKAGES)


def _methods(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    out: Dict[str, ast.AST] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[stmt.name] = stmt
    return out


def _self_attr_target(target: ast.expr) -> Optional[Tuple[str, ast.expr]]:
    """``self.X`` or ``self.X[...]`` store target -> (attr, anchor node)."""
    node = target
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr, target
    return None


def _self_writes(node: ast.stmt) -> List[Tuple[str, ast.expr]]:
    """Instance-state stores performed directly by one statement."""
    out: List[Tuple[str, ast.expr]] = []
    if isinstance(node, ast.Assign):
        for target in node.targets:
            targets = target.elts if isinstance(target, ast.Tuple) else [target]
            for t in targets:
                hit = _self_attr_target(t)
                if hit:
                    out.append(hit)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        hit = _self_attr_target(node.target)
        if hit:
            out.append(hit)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            hit = _self_attr_target(target)
            if hit:
                out.append(hit)
    return out


# ----------------------------------------------------------------------
# CC100
# ----------------------------------------------------------------------


@dataclass
class _SpawnSite:
    root: str  # method name handed to create_task
    line: int


def _spawn_sites(cls: ast.ClassDef) -> List[_SpawnSite]:
    sites: List[_SpawnSite] = []
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in TASK_SPAWNERS or not node.args:
            continue
        arg = node.args[0]
        if (
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Attribute)
            and isinstance(arg.func.value, ast.Name)
            and arg.func.value.id == "self"
        ):
            sites.append(_SpawnSite(root=arg.func.attr, line=node.lineno))
    return sites


def _self_call_region(methods: Dict[str, ast.AST], root: str) -> Set[str]:
    """Methods transitively reachable from *root* via ``self.m(...)``."""
    region: Set[str] = set()
    stack = [root]
    while stack:
        name = stack.pop()
        if name in region or name not in methods:
            continue
        region.add(name)
        for node in ast.walk(methods[name]):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
            ):
                stack.append(node.func.attr)
    return region


@register_rule
class SecondWriterRule(Rule):
    id = "CC100"
    title = "task-owned attribute written from a second coroutine"
    severity = "error"
    rationale = (
        "A spawned writer task owns the state it mutates; a second "
        "writer interleaves at awaits and the exact fold order — hence "
        "the bit-reproducibility guarantee — becomes schedule-dependent."
    )
    fixit = (
        "route the mutation through the owning task's queue, or move "
        "ownership of the attribute into the task region"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return _scoped(unit)

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(unit, node)

    def _check_class(
        self, unit: ModuleUnit, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        spawns = _spawn_sites(cls)
        if not spawns:
            return
        methods = _methods(cls)
        regions: Dict[str, Set[str]] = {}
        spawn_line: Dict[str, int] = {}
        for spawn in spawns:
            regions.setdefault(spawn.root, _self_call_region(methods, spawn.root))
            spawn_line.setdefault(spawn.root, spawn.line)
        # attr -> first owning root (deterministic: spawn order)
        owners: Dict[str, str] = {}
        writes: Dict[str, List[Tuple[str, ast.expr]]] = {}
        for name, fn in methods.items():
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.stmt):
                    for attr, anchor in _self_writes(stmt):
                        writes.setdefault(attr, []).append((name, anchor))
        for root in sorted(regions, key=lambda r: spawn_line[r]):
            for attr, sites in writes.items():
                if attr in owners:
                    continue
                if any(method in regions[root] for method, _ in sites):
                    owners[attr] = root
        for attr in sorted(owners):
            root = owners[attr]
            for method, anchor in writes[attr]:
                if method in regions[root] or method == "__init__":
                    continue
                yield self.finding(
                    unit,
                    anchor,
                    f"'self.{attr}' is owned by writer task "
                    f"'{cls.name}.{root}' (spawned at line "
                    f"{spawn_line[root]}) but is also written in "
                    f"'{cls.name}.{method}'",
                )


# ----------------------------------------------------------------------
# CC101
# ----------------------------------------------------------------------


@dataclass
class _TornState:
    """Abstract state of the statement-order event walk."""

    last_write: Optional[Tuple[str, int]] = None  # (attr, line)
    await_after_write: Optional[int] = None  # line of first await after it

    def copy(self) -> "_TornState":
        return _TornState(self.last_write, self.await_after_write)

    @staticmethod
    def merge(a: "_TornState", b: "_TornState") -> "_TornState":
        # May-analysis: prefer the branch that is already one write away
        # from a finding, then the one with a pending write.
        if a.await_after_write is not None:
            return a.copy()
        if b.await_after_write is not None:
            return b.copy()
        return a.copy() if a.last_write is not None else b.copy()


class _TornWalker:
    """Linearizes one async method into write/await events."""

    def __init__(self) -> None:
        self.pairs: List[Tuple[ast.expr, Tuple[str, int], int, str]] = []
        self._reported: Set[int] = set()

    def run(self, fn: ast.AST) -> None:
        self._walk_body(fn.body, _TornState())  # type: ignore[attr-defined]

    # -- events ----------------------------------------------------------

    def _on_await(self, state: _TornState, node: ast.expr) -> None:
        if state.last_write is not None and state.await_after_write is None:
            state.await_after_write = node.lineno

    def _on_write(
        self, state: _TornState, attr: str, anchor: ast.expr
    ) -> None:
        if (
            state.last_write is not None
            and state.await_after_write is not None
            and id(anchor) not in self._reported
        ):
            self._reported.add(id(anchor))
            self.pairs.append(
                (anchor, state.last_write, state.await_after_write, attr)
            )
        state.last_write = (attr, anchor.lineno)
        state.await_after_write = None

    def _expr_awaits(self, state: _TornState, expr: Optional[ast.expr]) -> None:
        if expr is None:
            return

        def visit(node: ast.AST) -> None:
            if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
                return  # separate scope: its awaits don't run here
            if isinstance(node, ast.Await):
                self._on_await(state, node)
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(expr)

    # -- statements ------------------------------------------------------

    def _walk_body(self, body: List[ast.stmt], state: _TornState) -> _TornState:
        for stmt in body:
            state = self._transfer(stmt, state)
        return state

    def _transfer(self, stmt: ast.stmt, state: _TornState) -> _TornState:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return state
        if isinstance(stmt, ast.If):
            self._expr_awaits(state, stmt.test)
            then_state = self._walk_body(stmt.body, state.copy())
            else_state = self._walk_body(stmt.orelse, state.copy())
            return _TornState.merge(then_state, else_state)
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            return self._loop(stmt, state)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr_awaits(state, item.context_expr)
                if isinstance(stmt, ast.AsyncWith):
                    self._on_await(state, item.context_expr)
            return self._walk_body(stmt.body, state)
        if isinstance(stmt, ast.Try):
            body_state = self._walk_body(stmt.body, state.copy())
            outcomes = [body_state]
            for handler in stmt.handlers:
                outcomes.append(
                    self._walk_body(
                        handler.body, _TornState.merge(state, body_state)
                    )
                )
            merged = outcomes[0]
            for outcome in outcomes[1:]:
                merged = _TornState.merge(merged, outcome)
            if stmt.orelse:
                merged = self._walk_body(stmt.orelse, merged)
            if stmt.finalbody:
                merged = self._walk_body(stmt.finalbody, merged)
            return merged
        if isinstance(stmt, ast.Return):
            self._expr_awaits(state, stmt.value)
            return _TornState()  # function exits; nothing is pending
        if isinstance(stmt, ast.Raise):
            self._expr_awaits(state, stmt.exc)
            return _TornState()
        # Plain statement: awaits embedded in the value happen before
        # the statement's own store completes.
        writes: List[Tuple[str, ast.expr]] = _self_writes(stmt)
        for field, value in ast.iter_fields(stmt):
            if field in ("targets", "target"):
                continue
            if isinstance(value, ast.expr):
                self._expr_awaits(state, value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        self._expr_awaits(state, item)
        for attr, anchor in writes:
            self._on_write(state, attr, anchor)
        return state

    def _loop(self, stmt: ast.stmt, state: _TornState) -> _TornState:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr_awaits(state, stmt.iter)
        elif isinstance(stmt, ast.While):
            self._expr_awaits(state, stmt.test)
        # Two passes expose loop-carried write -> await -> write pairs.
        for _ in range(2):
            if isinstance(stmt, ast.AsyncFor):
                self._on_await(state, stmt.iter)
            body_state = self._walk_body(stmt.body, state.copy())
            state = _TornState.merge(state, body_state)
            if isinstance(stmt, ast.While):
                self._expr_awaits(state, stmt.test)
        if stmt.orelse:  # type: ignore[attr-defined]
            state = self._walk_body(stmt.orelse, state)  # type: ignore[attr-defined]
        return state


@register_rule
class TornMutationRule(Rule):
    id = "CC101"
    title = "await between two writes of a multi-step state mutation"
    severity = "error"
    rationale = (
        "Every await is a scheduling point: state written in two steps "
        "around one is observable torn by any other task (a duplicate "
        "request can pass the dedup check, a reader can see a seq "
        "without its fold)."
    )
    fixit = (
        "stage the mutation in locals and publish with contiguous "
        "writes after the last await (or before the first)"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return _scoped(unit)

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        for cls in ast.walk(unit.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            for fn in _methods(cls).values():
                if not isinstance(fn, ast.AsyncFunctionDef):
                    continue
                walker = _TornWalker()
                walker.run(fn)
                for anchor, (prev_attr, prev_line), await_line, attr in walker.pairs:
                    yield self.finding(
                        unit,
                        anchor,
                        f"torn mutation in '{cls.name}.{fn.name}': "
                        f"'self.{prev_attr}' written at line {prev_line}, "
                        f"awaited at line {await_line}, then 'self.{attr}' "
                        f"written here — other tasks can observe the "
                        f"intermediate state",
                    )
