"""The ``repro lint`` subcommand: argument schema and entry point.

Exit codes: 0 clean, 1 findings, 2 usage error — the same contract
pre-commit and the CI ``lint`` job rely on.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import lint_paths, rule_catalogue
from repro.analysis.reporters import REPORTERS

__all__ = ["add_lint_parser", "run_lint"]


def add_lint_parser(sub: "argparse._SubParsersAction") -> None:
    """Attach the ``lint`` subparser to the top-level repro CLI."""
    p = sub.add_parser(
        "lint",
        help="run reprolint (float-safety & architecture invariants)",
        description=(
            "AST static analysis enforcing the repo's float-safety and "
            "architecture invariants. Exit 0 when clean, 1 on findings."
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: the src/ tree, else cwd)",
    )
    p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids to skip",
    )
    p.add_argument(
        "--format",
        choices=sorted(REPORTERS),
        default="text",
        dest="fmt",
        help="report format (default: text)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run per-file rules in N worker processes (0 = all cores); "
        "findings and their order are identical for every N",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    p.set_defaults(fn=run_lint)


def _split(arg: Optional[str]) -> Optional[List[str]]:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def _default_paths() -> List[str]:
    for candidate in ("src/repro", "src", "repro"):
        if Path(candidate).is_dir():
            return [candidate]
    return ["."]


def _print_catalogue() -> None:
    for cls in rule_catalogue():
        print(f"{cls.id:<9s} {cls.title}")
        if cls.rationale:
            print(f"          why : {cls.rationale}")
        if cls.fixit:
            print(f"          fix : {cls.fixit}")


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_catalogue()
        return 0
    jobs = args.jobs
    if jobs < 0:
        print("lint: --jobs must be >= 0", file=sys.stderr)
        return 2
    if jobs == 0:
        jobs = os.cpu_count() or 1
    started = time.perf_counter()
    try:
        result = lint_paths(
            args.paths or _default_paths(),
            select=_split(args.select),
            ignore=_split(args.ignore),
            jobs=jobs,
        )
    except ValueError as exc:  # unknown rule id in --select/--ignore
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    print(REPORTERS[args.fmt](result))
    # Wall time on stderr so json/sarif stdout stays machine-parseable;
    # CI greps this line to track the tree-wide lint budget.
    print(
        f"lint: checked {result.files_checked} file(s) "
        f"in {elapsed:.2f}s (jobs={jobs})",
        file=sys.stderr,
    )
    return 0 if result.ok else 1
