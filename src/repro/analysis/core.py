"""The reprolint engine: rules, findings, suppressions, and the runner.

``reprolint`` is a plugin-based AST static-analysis pass enforcing the
invariants that keep this repository's exact-summation guarantee true:
no code path may silently do naive float accumulation, float equality,
ad-hoc wire framing, or cross-plane coupling outside the certified
kernels. Rules register themselves with :func:`register_rule`; the
runner parses each file once, hands every rule a :class:`ModuleUnit`
(source + AST + scope metadata), and filters the produced
:class:`Finding` objects through per-line suppressions.

**Suppressions.** A finding on line ``L`` is silenced by a trailing
comment on that line (or a ``disable-next-line`` comment on ``L - 1``)::

    x = naive_thing()  # reprolint: disable=FP001 -- naive is the point here

The justification after ``--`` is mandatory: a suppression without one
does not suppress anything and additionally raises a ``SUPP001``
finding, so every silenced rule carries its reviewable why.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

__all__ = [
    "Finding",
    "Rule",
    "ModuleUnit",
    "ProjectContext",
    "LintResult",
    "register_rule",
    "rule_catalogue",
    "get_rules",
    "lint_source",
    "lint_paths",
    "iter_python_files",
    "SUPPRESSION_RULE_ID",
]

#: Meta rule id reported for malformed / unjustified suppressions.
SUPPRESSION_RULE_ID = "SUPP001"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    message: str
    path: str
    line: int
    col: int
    severity: str = "error"
    fixit: Optional[str] = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fixit": self.fixit,
        }


class Rule:
    """Base class for one lint rule.

    Subclasses set the class metadata below and implement
    :meth:`check`. Register with :func:`register_rule`; the id is the
    selection key (``repro lint --select FP001``) and the suppression
    key (``# reprolint: disable=FP001 -- why``).
    """

    id: str = "?"
    title: str = "?"
    severity: str = "error"
    rationale: str = ""
    #: One-line generic remediation, shown as ``hint:`` in text output.
    fixit: str = ""
    #: Project-scope rules need every unit parsed (the call-graph
    #: index); they run in the parent process even under ``--jobs N``.
    requires_project: bool = False

    def applies_to(self, unit: "ModuleUnit") -> bool:
        """Scope hook: return False to skip a file entirely."""
        return True

    def check(self, unit: "ModuleUnit") -> Iterable[Finding]:
        raise NotImplementedError

    def finding(
        self, unit: "ModuleUnit", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            message=message,
            path=unit.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            severity=self.severity,
            fixit=self.fixit or None,
        )


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the registry under its ``id``."""
    if not cls.id or cls.id == "?":
        raise ValueError(f"rule class {cls!r} needs a distinct 'id'")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _RULES[cls.id] = cls
    return cls


def rule_catalogue() -> List[Type[Rule]]:
    """Every registered rule class, sorted by id."""
    _load_builtin_rules()
    return [_RULES[k] for k in sorted(_RULES)]


def get_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Instantiate the selected rules (all when ``select`` is None)."""
    _load_builtin_rules()
    known = set(_RULES)
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise ValueError(
                f"unknown rule {requested!r}; expected one of {sorted(known)}"
            )
    wanted = set(select) if select else known
    wanted -= set(ignore or [])
    return [_RULES[k]() for k in sorted(wanted)]


def _load_builtin_rules() -> None:
    # Imported lazily so `import repro.analysis.core` never cycles.
    from repro.analysis import (  # noqa: F401
        architecture,
        concurrency,
        dataflow,
        floatsafety,
    )


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-next-line)?)"
    r"\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"\s*(?:--\s*(?P<why>.*\S))?\s*$"
)
_MALFORMED_RE = re.compile(r"#\s*reprolint\b")


@dataclass
class Suppression:
    """One parsed suppression comment and its justification."""

    line: int  # line the suppression *covers*
    comment_line: int  # line the comment sits on
    rules: Set[str]
    justification: str
    used: bool = False

    @property
    def justified(self) -> bool:
        return bool(self.justification)


def parse_suppressions(
    source: str,
) -> Tuple[Dict[int, List[Suppression]], List[Tuple[int, str]]]:
    """Scan for suppression comments.

    Returns ``(by_covered_line, malformed)`` where ``malformed`` lists
    ``(line, problem)`` pairs for ``# reprolint`` comments the parser
    could not understand (those are reported, never silently ignored).
    Only real comment tokens count — a suppression spelled inside a
    string or docstring (e.g. documentation showing the syntax) is
    neither honored nor flagged.
    """
    by_line: Dict[int, List[Suppression]] = {}
    malformed: List[Tuple[int, str]] = []
    for lineno, text in _comment_tokens(source):
        if "reprolint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            if _MALFORMED_RE.search(text):
                malformed.append(
                    (
                        lineno,
                        "malformed reprolint comment; expected "
                        "'# reprolint: disable=RULE -- justification'",
                    )
                )
            continue
        rules = {r.strip() for r in match.group("rules").split(",") if r.strip()}
        covered = lineno + 1 if match.group("kind").endswith("next-line") else lineno
        supp = Suppression(
            line=covered,
            comment_line=lineno,
            rules=rules,
            justification=(match.group("why") or "").strip(),
        )
        by_line.setdefault(covered, []).append(supp)
    return by_line, malformed


def _comment_tokens(source: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(line, text)`` for each comment token in *source*."""
    reader = io.StringIO(source).readline
    try:
        for tok in tokenize.generate_tokens(reader):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The AST parse gates linting, so this is unreachable for real
        # files; bail quietly rather than invent suppressions.
        return


# ----------------------------------------------------------------------
# module + project context
# ----------------------------------------------------------------------


def module_parts(path: str) -> Tuple[str, ...]:
    """Dotted-module parts of a file path, rooted at the ``repro`` package.

    ``src/repro/serve/shards.py`` -> ``("repro", "serve", "shards")``.
    Paths outside a ``repro`` package tree return ``()``; scoped rules
    then fall back to their most generic behavior.
    """
    parts = Path(path).as_posix().split("/")
    if "repro" not in parts:
        return ()
    idx = len(parts) - 1 - parts[::-1].index("repro")
    tail = parts[idx:]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][:-3]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return tuple(tail)


class ModuleUnit:
    """One parsed file: source, AST, parent links, and scope metadata."""

    def __init__(
        self,
        source: str,
        display_path: str,
        context: "ProjectContext",
    ) -> None:
        self.source = source
        self.display_path = display_path
        self.context = context
        self.tree = ast.parse(source, filename=display_path)
        self.parts = module_parts(display_path)
        self.suppressions, self.malformed_suppressions = parse_suppressions(source)
        self._extend_decorator_suppressions()
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def _extend_decorator_suppressions(self) -> None:
        """Honor decorator-line suppressions on the definition itself.

        Findings on a decorated ``def``/``class`` anchor at the
        definition line, but a trailing suppression comment written on
        a decorator (where the decorated statement *starts*) covers
        only that decorator's line. Extend any suppression covering a
        decorator line to the definition line too, sharing the
        ``Suppression`` object so used/useless accounting stays single.
        """
        for node in ast.walk(self.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if not node.decorator_list:
                continue
            first = node.decorator_list[0].lineno
            for line in range(first, node.lineno):
                for supp in self.suppressions.get(line, []):
                    bucket = self.suppressions.setdefault(node.lineno, [])
                    if supp not in bucket:
                        bucket.append(supp)

    # -- tree navigation -------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        for anc in self.ancestors(node):
            if isinstance(anc, ast.ClassDef):
                return anc
        return None

    def enclosing_function(
        self, node: ast.AST
    ) -> Optional[ast.AST]:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return anc
        return None

    def in_loop(self, node: ast.AST) -> bool:
        for anc in self.ancestors(node):
            if isinstance(anc, (ast.For, ast.While, ast.AsyncFor)):
                return True
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False

    # -- scope helpers ---------------------------------------------------

    def in_package(self, name: str) -> bool:
        """Whether this module sits under ``repro.<name>``."""
        return len(self.parts) >= 2 and self.parts[1] == name

    @property
    def module_name(self) -> str:
        return ".".join(self.parts) if self.parts else self.display_path

    def bindings(self, scope: Optional[ast.AST]) -> Dict[str, List[ast.expr]]:
        """``{name: [assigned exprs]}`` for one function scope.

        Nested function/class bodies are excluded so bindings stay
        local; module scope is the ``None`` key.
        """
        root = scope if scope is not None else self.tree
        out: Dict[str, List[ast.expr]] = {}

        def visit(node: ast.AST, top: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ) and not (top and child is root):
                    continue
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        for name in _target_names(target):
                            out.setdefault(name, []).append(child.value)
                elif isinstance(child, ast.AnnAssign) and child.value is not None:
                    for name in _target_names(child.target):
                        out.setdefault(name, []).append(child.value)
                elif isinstance(child, ast.AugAssign):
                    for name in _target_names(child.target):
                        out.setdefault(name, []).append(child.value)
                visit(child, False)

        visit(root, True)
        return out


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _target_names(elt)


class ProjectContext:
    """Cross-file facts rules may need (the codec table, package root).

    Built once per run. ``codec_encoders`` may be injected (tests) or
    is parsed lazily from the project's ``repro/codec.py`` registry.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        codec_encoders: Optional[Set[str]] = None,
    ) -> None:
        self.root = root
        self._codec_encoders = codec_encoders
        self._codec_loaded = codec_encoders is not None
        self.units: List["ModuleUnit"] = []
        self._index: Optional[object] = None

    def set_units(self, units: Sequence["ModuleUnit"]) -> None:
        """Attach this run's parsed units (resets the dataflow index)."""
        self.units = list(units)
        self._index = None

    @property
    def index(self) -> Optional[object]:
        """Lazily-built project :class:`ProjectIndex` over ``units``.

        ``None`` when no units were attached (a rule run outside the
        standard runners); project-scope rules then skip.
        """
        if self._index is None and self.units:
            from repro.analysis.dataflow.callgraph import ProjectIndex

            self._index = ProjectIndex(self.units)
        return self._index

    @property
    def codec_encoders(self) -> Optional[Set[str]]:
        """Names of ``encode_*`` functions registered in the codec table.

        ``None`` when no codec registry can be located (rules needing
        it then skip rather than guess).
        """
        if not self._codec_loaded:
            self._codec_loaded = True
            self._codec_encoders = self._parse_codec_table()
        return self._codec_encoders

    def _codec_path(self) -> Optional[Path]:
        candidates = []
        if self.root is not None:
            candidates.append(Path(self.root) / "repro" / "codec.py")
            candidates.append(Path(self.root) / "src" / "repro" / "codec.py")
        for cand in candidates:
            if cand.is_file():
                return cand
        return None

    def _parse_codec_table(self) -> Optional[Set[str]]:
        path = self._codec_path()
        if path is None:
            return None
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except (OSError, SyntaxError):
            return None
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                names = [t.id for t in node.targets if isinstance(t, ast.Name)]
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                names = [node.target.id]
            else:
                continue
            if "_DECODERS" not in names or not isinstance(node.value, ast.Dict):
                continue
            encoders: Set[str] = set()
            for value in node.value.values:
                fn: Optional[ast.expr] = None
                if isinstance(value, ast.Tuple) and len(value.elts) == 2:
                    fn = value.elts[1]
                elif isinstance(value, ast.Name):
                    fn = value
                if isinstance(fn, ast.Name) and fn.id.startswith("decode_"):
                    encoders.add("encode_" + fn.id[len("decode_") :])
            return encoders or None
        return None


def find_project_root(start: Path) -> Optional[Path]:
    """Directory whose ``repro/codec.py`` (or ``src/repro/codec.py``) exists."""
    cur = start.resolve()
    if cur.is_file():
        cur = cur.parent
    for cand in [cur, *cur.parents]:
        if (cand / "repro" / "codec.py").is_file():
            return cand
        if (cand / "src" / "repro" / "codec.py").is_file():
            return cand
    return None


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def sorted_findings(self) -> List[Finding]:
        return sorted(
            self.findings, key=lambda f: (f.path, f.line, f.col, f.rule)
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "findings": [f.to_json() for f in self.sorted_findings()],
            "summary": {
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "files_checked": self.files_checked,
                "ok": self.ok,
            },
        }


def _apply_suppressions(
    unit: ModuleUnit,
    raw: List[Finding],
    selected_ids: Set[str],
) -> Tuple[List[Finding], int]:
    """Filter findings through the unit's suppressions.

    A justified suppression naming the rule silences the finding. An
    unjustified one does not — and earns a SUPP001 finding of its own,
    as does any malformed reprolint comment.
    """
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        silenced = False
        for supp in unit.suppressions.get(finding.line, []):
            if finding.rule not in supp.rules and "all" not in supp.rules:
                continue
            supp.used = True
            if supp.justified:
                silenced = True
            else:
                kept.append(
                    Finding(
                        rule=SUPPRESSION_RULE_ID,
                        message=(
                            f"suppression of {finding.rule} has no "
                            f"justification; write '# reprolint: "
                            f"disable={finding.rule} -- <why>'"
                        ),
                        path=unit.display_path,
                        line=supp.comment_line,
                        col=1,
                        severity="error",
                    )
                )
        if silenced:
            suppressed += 1
        else:
            kept.append(finding)
    for lineno, problem in unit.malformed_suppressions:
        kept.append(
            Finding(
                rule=SUPPRESSION_RULE_ID,
                message=problem,
                path=unit.display_path,
                line=lineno,
                col=1,
                severity="error",
            )
        )
    # Suppressions naming selected rules that silenced nothing are noise
    # drift (the violation moved or was fixed); keep the tree honest.
    # One object may cover several lines (decorator extension): visit once.
    seen_supps: Set[int] = set()
    for supps in unit.suppressions.values():
        for supp in supps:
            if id(supp) in seen_supps:
                continue
            seen_supps.add(id(supp))
            if supp.used or not (supp.rules & selected_ids):
                continue
            kept.append(
                Finding(
                    rule=SUPPRESSION_RULE_ID,
                    message=(
                        "useless suppression: no "
                        + "/".join(sorted(supp.rules & selected_ids))
                        + " finding on the covered line"
                    ),
                    path=unit.display_path,
                    line=supp.comment_line,
                    col=1,
                    severity="error",
                )
            )
    return kept, suppressed


def _parse_unit(
    source: str,
    display_path: str,
    context: ProjectContext,
    result: LintResult,
) -> Optional[ModuleUnit]:
    try:
        return ModuleUnit(source, display_path, context)
    except SyntaxError as exc:
        result.findings.append(
            Finding(
                rule="E999",
                message=f"syntax error: {exc.msg}",
                path=display_path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
            )
        )
        return None


def _collect_raw(unit: ModuleUnit, rules: Sequence[Rule]) -> List[Finding]:
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(unit):
            raw.extend(rule.check(unit))
    return raw


def lint_source(
    source: str,
    filename: str = "<snippet>",
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    context: Optional[ProjectContext] = None,
) -> LintResult:
    """Lint one source string (the fixture-test entry point)."""
    rules = get_rules(select, ignore)
    ctx = context if context is not None else ProjectContext()
    result = LintResult(files_checked=1)
    unit = _parse_unit(source, filename, ctx, result)
    if unit is None:
        return result
    ctx.set_units([unit])
    raw = _collect_raw(unit, rules)
    kept, suppressed = _apply_suppressions(unit, raw, {r.id for r in rules})
    result.findings.extend(kept)
    result.suppressed += suppressed
    return result


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into sorted ``.py`` files."""
    seen: Set[Path] = set()
    for item in paths:
        p = Path(item)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for cand in candidates:
            if cand not in seen:
                seen.add(cand)
                yield cand


#: Per-worker ProjectContext cache, keyed by project root. Saves the
#: codec-table parse from repeating for every file in a chunk.
_WORKER_CONTEXTS: Dict[Optional[str], ProjectContext] = {}


def _file_rules_worker(
    args: Tuple[str, str, Tuple[str, ...], Optional[str]],
) -> Tuple[str, List[Finding]]:
    """Run the per-file rules on one already-parseable source (child proc)."""
    display_path, source, rule_ids, root = args
    ctx = _WORKER_CONTEXTS.get(root)
    if ctx is None:
        ctx = ProjectContext(root=Path(root) if root else None)
        _WORKER_CONTEXTS[root] = ctx
    rules = [r for r in get_rules(list(rule_ids)) if not r.requires_project]
    try:
        unit = ModuleUnit(source, display_path, ctx)
    except SyntaxError:  # parent already reported E999; unreachable
        return display_path, []
    return display_path, _collect_raw(unit, rules)


def _parallel_file_findings(
    units: Sequence[ModuleUnit],
    rule_ids: Sequence[str],
    ctx: ProjectContext,
    jobs: int,
) -> Optional[Dict[str, List[Finding]]]:
    """Fan per-file rules out to a process pool; None -> fall back serial."""
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    root = str(ctx.root) if ctx.root is not None else None
    payload = [
        (u.display_path, u.source, tuple(rule_ids), root) for u in units
    ]
    out: Dict[str, List[Finding]] = {}
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            chunksize = max(1, len(payload) // (jobs * 4))
            for display_path, findings in pool.map(
                _file_rules_worker, payload, chunksize=chunksize
            ):
                out[display_path] = findings
    except (BrokenProcessPool, OSError, PermissionError):
        # Sandboxes without fork/spawn support: lint correctness beats
        # parallelism, so degrade silently to in-process.
        return None
    return out


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    context: Optional[ProjectContext] = None,
    jobs: int = 1,
) -> LintResult:
    """Lint files and directories; the ``repro lint`` entry point.

    ``jobs > 1`` fans the per-file rules out over a process pool.
    Project-scope rules (``requires_project``) and suppression
    accounting always run in the parent over the full unit list, so
    the findings — and their order — are identical for every ``jobs``
    value.
    """
    rules = get_rules(select, ignore)
    selected_ids = {r.id for r in rules}
    file_rules = [r for r in rules if not r.requires_project]
    project_rules = [r for r in rules if r.requires_project]
    result = LintResult()
    ctx = context
    sources: List[Tuple[Path, str]] = []
    for path in iter_python_files(paths):
        if ctx is None:
            ctx = ProjectContext(root=find_project_root(path))
        try:
            source = path.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            result.findings.append(
                Finding(
                    rule="E998",
                    message=f"cannot read file: {exc}",
                    path=str(path),
                    line=1,
                    col=1,
                )
            )
            continue
        result.files_checked += 1
        sources.append((path, source))
    if ctx is None:
        ctx = ProjectContext()
    units: List[ModuleUnit] = []
    for path, source in sources:
        unit = _parse_unit(source, str(path), ctx, result)
        if unit is not None:
            units.append(unit)
    ctx.set_units(units)
    raw: Dict[str, List[Finding]] = {u.display_path: [] for u in units}
    parallel: Optional[Dict[str, List[Finding]]] = None
    if jobs > 1 and len(units) > 1 and file_rules:
        parallel = _parallel_file_findings(
            units, [r.id for r in file_rules], ctx, jobs
        )
    if parallel is not None:
        for display_path, findings in parallel.items():
            raw[display_path] = findings
    else:
        for unit in units:
            raw[unit.display_path].extend(_collect_raw(unit, file_rules))
    for unit in units:
        raw[unit.display_path].extend(_collect_raw(unit, project_rules))
    for unit in units:
        kept, suppressed = _apply_suppressions(
            unit, raw[unit.display_path], selected_ids
        )
        result.findings.extend(kept)
        result.suppressed += suppressed
    return result
