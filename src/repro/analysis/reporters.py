"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

All render a :class:`~repro.analysis.core.LintResult`. The JSON shape
is versioned (``{"version": 1, "findings": [...], "summary": {...}}``)
because CI consumes it; the SARIF document follows the 2.1.0 schema so
the CI lint job can upload it and findings annotate PR diffs.
"""

from __future__ import annotations

import json
from pathlib import PurePath
from typing import Callable, Dict, List

from repro.analysis.core import Finding, LintResult, rule_catalogue

__all__ = ["render_text", "render_json", "render_sarif", "REPORTERS"]


def render_text(result: LintResult) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = []
    for f in result.sorted_findings():
        lines.append(f"{f.location()}: {f.rule} {f.message}")
        if f.fixit:
            lines.append(f"    hint: {f.fixit}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} "
        f"({result.suppressed} suppressed) in {result.files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Versioned JSON document (the ``--format json`` CI contract)."""
    return json.dumps(result.to_json(), indent=2, sort_keys=True)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVELS = {"error": "error", "warning": "warning"}


def _sarif_result(finding: Finding, rule_index: Dict[str, int]) -> Dict[str, object]:
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": _SARIF_LEVELS.get(finding.severity, "note"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": PurePath(finding.path).as_posix(),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                }
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 log (the ``--format sarif`` CI-upload contract)."""
    catalogue = {cls.id: cls for cls in rule_catalogue()}
    findings = result.sorted_findings()
    rule_ids = sorted({f.rule for f in findings} | set(catalogue))
    rules_meta: List[Dict[str, object]] = []
    for rid in rule_ids:
        cls = catalogue.get(rid)
        entry: Dict[str, object] = {"id": rid}
        if cls is not None:
            entry["shortDescription"] = {"text": cls.title}
            if cls.rationale:
                entry["fullDescription"] = {"text": cls.rationale}
            if cls.fixit:
                entry["help"] = {"text": cls.fixit}
            entry["defaultConfiguration"] = {
                "level": _SARIF_LEVELS.get(cls.severity, "note")
            }
        else:  # runner-level findings: E998/E999/SUPP001
            entry["shortDescription"] = {"text": rid}
        rules_meta.append(entry)
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/ANALYSIS.md",
                        "rules": rules_meta,
                    }
                },
                "results": [_sarif_result(f, rule_index) for f in findings],
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


REPORTERS: Dict[str, Callable[[LintResult], str]] = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
