"""Finding reporters: human text and machine JSON.

Both render a :class:`~repro.analysis.core.LintResult`; the JSON shape
is versioned (``{"version": 1, "findings": [...], "summary": {...}}``)
because CI consumes it.
"""

from __future__ import annotations

import json
from typing import Callable, Dict

from repro.analysis.core import LintResult

__all__ = ["render_text", "render_json", "REPORTERS"]


def render_text(result: LintResult) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    lines = []
    for f in result.sorted_findings():
        lines.append(f"{f.location()}: {f.rule} {f.message}")
        if f.fixit:
            lines.append(f"    hint: {f.fixit}")
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} "
        f"({result.suppressed} suppressed) in {result.files_checked} file(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Versioned JSON document (the ``--format json`` CI contract)."""
    return json.dumps(result.to_json(), indent=2, sort_keys=True)


REPORTERS: Dict[str, Callable[[LintResult], str]] = {
    "text": render_text,
    "json": render_json,
}
