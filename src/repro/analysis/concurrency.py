"""Concurrency-invariant rules: single-writer shards, event-loop hygiene.

The serving plane's exactness story leans on two disciplines no test
can fully pin down: shard state is mutated by exactly one writer task
(so folds need no locks and FIFO queue order *is* the snapshot
consistency model), and the event loop never blocks (so backpressure
and latency numbers mean what they claim). The shared-memory data
plane adds a third: a published segment is immutable (workers hold
zero-copy views into it). These rules encode all three.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.analysis.core import Finding, ModuleUnit, Rule, register_rule

__all__ = [
    "BlockingIoInAsync",
    "ShardStateEscape",
    "SegmentWriteAfterPublish",
    "BlockingIoInClusterAsync",
]

#: Module-level calls that block the event loop.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"),
    ("os", "system"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "create_connection"),
    ("requests", "get"),
    ("requests", "post"),
}
#: Blocking filesystem methods regardless of receiver (Path-style I/O).
_BLOCKING_METHOD_NAMES = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}


@register_rule
class BlockingIoInAsync(Rule):
    """CC001: blocking I/O inside ``serve/`` async functions.

    One blocking call in a handler stalls every shard queue behind the
    same loop — backpressure readings, microbatch coalescing windows,
    and p99 latency all silently degrade. Blocking work moves to
    ``await asyncio.to_thread(...)``.
    """

    id = "CC001"
    title = "blocking I/O on the serving event loop"
    rationale = (
        "a blocked loop freezes every shard writer and poisons the "
        "latency/backpressure numbers the service reports"
    )
    fixit = "wrap the call in 'await asyncio.to_thread(...)'"

    def applies_to(self, unit: ModuleUnit) -> bool:
        return "serve" in unit.parts

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                label = self._blocking_label(sub)
                if label is not None:
                    yield self.finding(
                        unit,
                        sub,
                        f"blocking call {label} inside async "
                        f"'{node.name}' stalls the event loop",
                    )

    @staticmethod
    def _blocking_label(call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "open()"
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and (func.value.id, func.attr) in _BLOCKING_MODULE_CALLS
            ):
                return f"{func.value.id}.{func.attr}()"
            if func.attr in _BLOCKING_METHOD_NAMES:
                return f".{func.attr}()"
        return None


#: Additional blocking calls that matter on the cluster's WAL path:
#: durability syscalls that must run inside the writer task's
#: ``asyncio.to_thread`` hop, never on the event loop.
_BLOCKING_FS_CALLS = {
    ("os", "fsync"),
    ("os", "replace"),
    ("os", "rename"),
    ("os", "remove"),
    ("os", "unlink"),
    ("shutil", "copy"),
    ("shutil", "copyfile"),
    ("shutil", "move"),
}


@register_rule
class BlockingIoInClusterAsync(BlockingIoInAsync):
    """CC004: blocking file I/O inside ``cluster/`` async functions.

    The coordinator's scatter/gather fan-outs, the failover healing
    path and the nodes' ingest handlers all share one event loop; a
    synchronous WAL append or fsync on that loop freezes every node
    handle at once — exactly when the cluster is trying to ride out a
    failure. Durability work goes through ``asyncio.to_thread`` or
    the WAL writer task (which batches it off-loop).
    """

    id = "CC004"
    title = "blocking file I/O on the cluster event loop"
    rationale = (
        "a blocked coordinator loop stalls ingest, health probes and "
        "failover simultaneously; WAL durability must not cost loop "
        "latency"
    )
    fixit = (
        "route the call through 'await asyncio.to_thread(...)' or "
        "enqueue it on the WalWriter task"
    )

    def applies_to(self, unit: ModuleUnit) -> bool:
        return "cluster" in unit.parts

    @staticmethod
    def _blocking_label(call: ast.Call) -> Optional[str]:
        label = BlockingIoInAsync._blocking_label(call)
        if label is not None:
            return label
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and (func.value.id, func.attr) in _BLOCKING_FS_CALLS
        ):
            return f"{func.value.id}.{func.attr}()"
        return None


@register_rule
class ShardStateEscape(Rule):
    """CC002: shard accumulator state touched outside its writer.

    ``AccumulatorShard._streams`` is single-writer state: only the
    shard's own methods (executed by its writer loop) may read or
    mutate it. Any ``other._streams`` access from outside the class
    races the writer — reads see torn microbatches, writes corrupt
    exact state without failing loudly.
    """

    id = "CC002"
    title = "shard accumulator state accessed outside the owning shard"
    rationale = (
        "the lock-free fold path is sound only while one task owns "
        "the stream map; outside access reintroduces the race the "
        "queue exists to remove"
    )
    fixit = (
        "route the access through shard.call(fn) so it runs inside "
        "the writer loop at a queue sequence point"
    )

    #: Attributes that constitute the shard's private mutable state.
    _PROTECTED = {"_streams"}
    _OWNER = "AccumulatorShard"

    def applies_to(self, unit: ModuleUnit) -> bool:
        return "serve" in unit.parts

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        for node in ast.walk(unit.tree):
            if (
                not isinstance(node, ast.Attribute)
                or node.attr not in self._PROTECTED
            ):
                continue
            cls = unit.enclosing_class(node)
            inside_owner = (
                cls is not None
                and cls.name == self._OWNER
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            )
            if not inside_owner:
                yield self.finding(
                    unit,
                    node,
                    f"'{node.attr}' accessed outside {self._OWNER}'s own "
                    f"methods (single-writer discipline)",
                )


@register_rule
class SegmentWriteAfterPublish(Rule):
    """CC003: writes into a shared-memory segment view after publish.

    ``ShmDataPlane`` publishes segments whose bytes workers read
    through zero-copy views; the placement copy inside the plane is
    the *only* legal write. A store through ``resolve_block(...)`` or
    an ``np.frombuffer(seg.buf, ...)`` view outside the plane mutates
    data concurrently visible to every worker mid-fold.
    """

    id = "CC003"
    title = "shared-memory segment written after publish"
    rationale = (
        "workers fold straight out of the segment; a post-publish "
        "write is a data race that silently changes the sum being "
        "computed"
    )
    fixit = (
        "copy the view (np.array(view)) and mutate the copy, or place "
        "new data through ShmDataPlane before publishing"
    )

    _OWNER = "ShmDataPlane"

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        # Collect, per function scope, names bound to segment views.
        for node in ast.walk(unit.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    yield from self._check_store(unit, node, target)

    def _view_names(self, unit: ModuleUnit, scope) -> set:
        names = set()
        for name, values in unit.bindings(scope).items():
            for value in values:
                if self._is_view_expr(value):
                    names.add(name)
        return names

    @staticmethod
    def _is_view_expr(node: ast.expr) -> bool:
        """``resolve_block(...)`` or ``np.frombuffer(*.buf, ...)``."""
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name) and func.id == "resolve_block":
            return True
        if isinstance(func, ast.Attribute) and func.attr == "resolve_block":
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "frombuffer"
            and any(
                isinstance(arg, ast.Attribute) and arg.attr == "buf"
                for arg in node.args
            )
        ):
            return True
        return False

    def _check_store(
        self, unit: ModuleUnit, stmt: ast.AST, target: ast.expr
    ) -> Iterable[Finding]:
        cls = unit.enclosing_class(stmt)
        if cls is not None and cls.name == self._OWNER:
            return
        # view[...] = ...  or  np.frombuffer(seg.buf)[...] = ...
        if isinstance(target, ast.Subscript):
            base = target.value
            if self._is_view_expr(base):
                yield self.finding(
                    unit, stmt, "store into a fresh segment view after publish"
                )
                return
            if isinstance(base, ast.Name):
                scope = unit.enclosing_function(stmt)
                if base.id in self._view_names(unit, scope):
                    yield self.finding(
                        unit,
                        stmt,
                        f"store into segment view '{base.id}' after publish",
                    )
        # view.flags.writeable = True re-arms writes on a published view
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "writeable"
            and isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is True
        ):
            yield self.finding(
                unit,
                stmt,
                "re-enabling writes on a published segment view",
            )
