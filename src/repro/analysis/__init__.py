"""``repro.analysis`` — reprolint, the float-safety & invariant linter.

A plugin-based AST static-analysis pass enforcing the invariants that
keep this repository's exact-summation guarantee true. Three rule
families:

=========  ==========================================================
FP001      builtin ``sum()`` / loop ``+=`` accumulation over floats
FP002      float ``==`` / ``!=`` comparison
FP003      ``math.fsum`` / ``np.sum`` bypassing the kernel layer
FP004      unguarded ``float(Fraction)`` narrowing
ARCH001    ``struct`` framing outside ``repro.codec``
ARCH002    registered kernel missing SumKernel protocol members
ARCH003    ``to_wire`` frame not registered in the codec table
ARCH004    cross-plane import bypassing ``plan.PLANES``
CC001      blocking I/O inside ``serve/`` async functions
CC002      shard accumulator state touched outside its writer
CC003      shared-memory segment written after publish
=========  ==========================================================

Run it with ``python -m repro lint src/`` (or via pre-commit / CI).
Suppress a finding with a justified trailing comment::

    total = naive()  # reprolint: disable=FP001 -- naive is the subject here

See ``docs/ANALYSIS.md`` for the full catalogue and suppression policy.
"""

from repro.analysis.core import (
    Finding,
    LintResult,
    ModuleUnit,
    ProjectContext,
    Rule,
    get_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    register_rule,
    rule_catalogue,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "Finding",
    "LintResult",
    "ModuleUnit",
    "ProjectContext",
    "Rule",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "rule_catalogue",
    "render_json",
    "render_text",
]
