"""``repro.analysis`` — reprolint, the float-safety & invariant linter.

A plugin-based AST static-analysis pass enforcing the invariants that
keep this repository's exact-summation guarantee true. Three rule
families, plus a project-wide dataflow engine (``repro.analysis
.dataflow``) behind the three interprocedural rules:

=========  ==========================================================
FP001      builtin ``sum()`` / loop ``+=`` accumulation over floats
FP002      float ``==`` / ``!=`` comparison
FP003      ``math.fsum`` / ``np.sum`` bypassing the kernel layer
FP004      unguarded ``float(Fraction)`` narrowing
FP005      ``np.dot`` / ``np.linalg.norm`` bypassing the reductions
FP100      ingested value rounded before reaching a fold (taint)
ARCH001    ``struct`` framing outside ``repro.codec``
ARCH002    registered kernel missing SumKernel protocol members
ARCH003    ``to_wire`` frame not registered in the codec table
ARCH004    cross-plane import bypassing ``plan.PLANES``
ARCH005    boxed float payload on a codec-capable wire path
CC001      blocking I/O inside ``serve/`` async functions
CC002      shard accumulator state touched outside its writer
CC003      shared-memory segment written after publish
CC004      blocking file I/O on the cluster event loop
CC100      task-owned attribute written from a second coroutine
CC101      await between two writes of a multi-step mutation
=========  ==========================================================

Run it with ``python -m repro lint src/`` (``--jobs N`` fans the
per-file rules over a process pool; findings are identical for every
N) via pre-commit or CI; ``--format sarif`` emits SARIF 2.1.0 for
code-scanning upload.
Suppress a finding with a justified trailing comment::

    total = naive()  # reprolint: disable=FP001 -- naive is the subject here

See ``docs/ANALYSIS.md`` for the full catalogue and suppression policy.
"""

from repro.analysis.core import (
    Finding,
    LintResult,
    ModuleUnit,
    ProjectContext,
    Rule,
    get_rules,
    iter_python_files,
    lint_paths,
    lint_source,
    register_rule,
    rule_catalogue,
)
from repro.analysis.reporters import render_json, render_sarif, render_text

__all__ = [
    "Finding",
    "LintResult",
    "ModuleUnit",
    "ProjectContext",
    "Rule",
    "get_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "register_rule",
    "rule_catalogue",
    "render_json",
    "render_sarif",
    "render_text",
]
