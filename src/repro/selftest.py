"""Installation self-check: a fast battery over every subsystem.

``python -m repro selftest`` runs in a few seconds and exercises one
representative path through each subsystem against exact references —
the release-engineering convention for numerical libraries whose
correctness depends on platform floating-point behaviour (rounding
mode, FMA contraction, x87 double-rounding would all surface here).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List, Tuple

import numpy as np

from repro.util.bits import same_float

__all__ = ["run_selftest"]


def _ref(values) -> float:
    from repro.core.rounding import round_scaled_int

    total = Fraction(0)
    for v in values:
        total += Fraction(float(v))
    if total == 0:
        return 0.0
    num, den = total.numerator, total.denominator
    return round_scaled_int(num, -(den.bit_length() - 1))


def _check_environment() -> None:
    # round-to-nearest-even and no surprise FMA contraction
    # reprolint: disable-next-line=FP002 -- probes the hardware rounding mode on purpose
    assert 1.0 + 2.0**-53 == 1.0, "rounding mode is not nearest-even"
    # reprolint: disable-next-line=FP002 -- probes the precision of the double format
    assert 1.0 + 2.0**-52 != 1.0, "double precision narrower than expected"
    x, y = 1e16, 1.0
    s = x + y
    # reprolint: disable-next-line=FP002 -- TwoSum residual is exact by construction
    assert (x - (s - (s - x))) + (y - (s - x)) == 1.0, "TwoSum algebra broken"


def _check_core() -> None:
    from repro.core import exact_sum

    rng = np.random.default_rng(1)
    x = (rng.random(2000) - 0.5) * 10.0 ** rng.integers(-200, 200, 2000)
    want = _ref(x)
    for method in ("sparse", "small", "dense"):
        assert exact_sum(x, method=method) == want, method


def _check_adaptive() -> None:
    from repro.adaptive import adaptive_sum_detail
    from repro.core import exact_sum

    # Tier 0 must certify a benign input and agree with the reference.
    rng = np.random.default_rng(7)
    x = rng.random(4096) + 1.0
    detail = adaptive_sum_detail(x)
    assert detail.value == _ref(x)
    assert detail.tier == 0, f"certificate failed on benign input (tier {detail.tier})"
    # Massive cancellation must escalate yet stay bit-identical.
    y = np.concatenate([x * 2.0**90, -(x * 2.0**90), rng.random(64)])
    rng.shuffle(y)
    detail = adaptive_sum_detail(y)
    assert detail.value == _ref(y)
    assert detail.tier > 0, "certificate accepted a massive cancellation"
    # An exact rounding tie: hardware and superaccumulator must agree.
    t = np.array([1.0, 2.0**-53])
    assert same_float(adaptive_sum_detail(t).value, 1.0)
    assert same_float(exact_sum(t, method="sparse"), 1.0)


def _check_baselines() -> None:
    from repro.baselines import hybrid_sum, ifastsum

    cases = [[1.0, 2.0**-53], [1e16, 1.0, -1e16], [2.0**-1074] * 5]
    for c in cases:
        want = _ref(c)
        assert ifastsum(c) == want
        assert hybrid_sum(c) == want


def _check_pram() -> None:
    from repro.pram import PRAM, cole_merge_sort, pram_exact_sum

    rng = np.random.default_rng(2)
    x = (rng.random(256) - 0.5) * 10.0 ** rng.integers(-50, 50, 256)
    assert pram_exact_sum(x).value == _ref(x)
    out, _ = cole_merge_sort(PRAM(), x)
    assert (out == np.sort(x)).all()


def _check_extmem() -> None:
    from repro.extmem import BlockDevice, ExtArray, extmem_sum_scan, extmem_sum_sorted

    rng = np.random.default_rng(3)
    x = (rng.random(1000) - 0.5) * 10.0 ** rng.integers(-80, 80, 1000)
    dev = BlockDevice(block_size=64, memory=64 * 10)
    src = ExtArray.from_numpy(dev, "x", x)
    assert extmem_sum_sorted(dev, src).value == _ref(x)
    dev2 = BlockDevice(block_size=64, memory=64 * 10)
    src2 = ExtArray.from_numpy(dev2, "x", x)
    assert extmem_sum_scan(dev2, src2).value == _ref(x)


def _check_mapreduce() -> None:
    from repro.mapreduce import parallel_sum

    rng = np.random.default_rng(4)
    x = (rng.random(3000) - 0.5) * 10.0 ** rng.integers(-80, 80, 3000)
    assert parallel_sum(x, block_items=256) == _ref(x)


def _check_bsp() -> None:
    from repro.bsp import exact_allreduce_sum

    rng = np.random.default_rng(5)
    x = (rng.random(500) - 0.5) * 10.0 ** rng.integers(-50, 50, 500)
    res = exact_allreduce_sum(np.array_split(x, 5))
    assert res.values == [_ref(x)] * 5


def _check_geometry() -> None:
    from repro.geometry import incircle, orient2d

    assert orient2d(0.5 + 2.0**-53, 0.5, 12.0, 12.0, 24.0, 24.0) != 0
    assert incircle((1, 0), (0, 1), (-1, 0), (0, -1)) == 0


def _check_stats() -> None:
    from repro.stats import exact_variance

    assert same_float(exact_variance(np.array([1e8 + 1, 1e8 + 2, 1e8 + 3, 1e8 + 4])), 1.25)


def _check_kernels() -> None:
    from repro.kernels import get_kernel, kernel_names, kernel_sum

    rng = np.random.default_rng(8)
    x = (rng.random(1500) - 0.5) * 10.0 ** rng.integers(-60, 60, 1500)
    want = _ref(x)
    blocks = np.array_split(x, 7)
    for name in kernel_names():
        kernel = get_kernel(name)
        assert kernel_sum(kernel, blocks) == want, name
        # wire round-trip through the codec registry (speculative
        # kernels may refuse to round a truncated/uncertified partial,
        # so assert frame stability, and the value only when exact)
        part = kernel.fold(x)
        frame = kernel.to_wire(part)
        assert kernel.to_wire(kernel.from_wire(frame)) == frame, name
        if kernel.exact:
            assert kernel.round(kernel.from_wire(frame)) == want, name


def _check_binned() -> None:
    from repro.core import exact_sum
    from repro.kernels import get_kernel
    from repro.util.capabilities import capability_report, has_numba

    rng = np.random.default_rng(11)
    x = (rng.random(3000) - 0.5) * 10.0 ** rng.integers(-250, 250, 3000)
    x = np.concatenate([x, [5e-324, -5e-324, 3e-310, -0.0, 1e308, -1e308]])
    want = exact_sum(x, method="sparse")
    assert exact_sum(x, method="binned") == want
    report = capability_report()
    assert set(report) >= {"numba", "numba_version", "numba_threads"}
    kernel = get_kernel("binned")
    part = kernel.combine(kernel.fold(x[:1000]), kernel.fold(x[1000:]))
    assert kernel.round(part) == want
    if has_numba():
        assert exact_sum(x, method="binned_jit") == want


def _check_plan() -> None:
    from repro.kernels import kernel_names
    from repro.plan import DataDescriptor, kernel_candidates, plan_sum

    rng = np.random.default_rng(9)
    x = (rng.random(1200) - 0.5) * 10.0 ** rng.integers(-40, 40, 1200)
    want = _ref(x)
    plan = plan_sum(DataDescriptor.describe_array(x))
    assert plan.plane == "serial", plan.plane
    assert plan.execute() == want
    big = plan_sum(DataDescriptor(n=1 << 20, layout="memory", workers=4))
    assert big.plane == "mapreduce", big.plane
    directed = plan_sum(DataDescriptor.describe_array(x), mode="down")
    assert directed.tier == "exact", directed.tier
    # The planner must never select an unregistered optional backend,
    # and every candidate row must carry a non-empty rationale.
    for mode in ("nearest", "down"):
        cands = kernel_candidates(mode=mode)
        assert all(c.reason for c in cands)
        chosen = plan_sum(DataDescriptor.describe_array(x), mode=mode).kernel
        assert chosen in kernel_names(), chosen


def _check_serve() -> None:
    import asyncio

    from repro.serve import InProcessClient, ReproService, ServeConfig

    async def roundtrip() -> None:
        async with ReproService(ServeConfig(shards=2)) as service:
            client = InProcessClient(service)
            await client.add_array("t", [1e16, 1.0, -1e16])
            assert same_float(await client.value("t"), 1.0)
            assert await client.count("t") == 3

    asyncio.run(roundtrip())


def _check_cluster() -> None:
    import asyncio

    from repro.cluster import LocalCluster
    from repro.core import exact_sum

    rng = np.random.default_rng(13)
    x = (rng.random(1500) - 0.5) * 10.0 ** rng.integers(-60, 60, 1500)
    want = exact_sum(x, method="sparse")

    async def roundtrip() -> None:
        async with LocalCluster(nodes=3, replication=2) as lc:
            co = lc.coordinator
            for piece in np.array_split(x, 6):
                await co.append("t", piece)
            # replicated read survives losing the stream's primary
            lc.kill(co._placement("t").primary)
            placed = await co.value("t")
            assert same_float(placed["value"], want), "placed read drifted"
            # scatter/gather recombination is the same exact merge
            await co.scatter("u", x, chunk=256)
            gathered = await co.gather_value("u")
            assert same_float(gathered["value"], want), "gather drifted"

    asyncio.run(roundtrip())


def _check_analysis() -> None:
    from pathlib import Path

    from repro.analysis import lint_paths, lint_source, rule_catalogue

    assert len(rule_catalogue()) >= 17, "builtin rule families failed to register"
    # The linter must still catch a planted violation...
    planted = lint_source("def f(xs):\n    return sum(float(x) for x in xs)\n")
    assert any(f.rule == "FP001" for f in planted.findings), "FP001 went blind"
    # ...the dataflow engine must catch its three planted shapes...
    second_writer = lint_source(
        "import asyncio\n"
        "class W:\n"
        "    async def start(self):\n"
        "        self._t = asyncio.create_task(self._run())\n"
        "    async def _run(self):\n"
        "        self._state = 1\n"
        "    def reset(self):\n"
        "        self._state = 0\n",
        "repro/serve/planted.py",
        select=["CC100"],
    )
    assert any(f.rule == "CC100" for f in second_writer.findings), "CC100 went blind"
    torn = lint_source(
        "class N:\n"
        "    async def apply(self, seq, arr):\n"
        "        self._applied = seq\n"
        "        await self._fold(arr)\n"
        "        self._count = 1\n",
        "repro/cluster/planted.py",
        select=["CC101"],
    )
    assert any(f.rule == "CC101" for f in torn.findings), "CC101 went blind"
    tainted = lint_source(
        "import numpy as np\n"
        "def handle(blob):\n"
        "    arr = np.frombuffer(blob, dtype=np.float64)\n"
        "    return arr * 0.5\n",
        "repro/serve/planted.py",
        select=["FP100"],
    )
    assert any(f.rule == "FP100" for f in tainted.findings), "FP100 went blind"
    # ...and the installed tree must be clean under every rule.
    import repro

    pkg_dir = Path(repro.__file__).parent
    result = lint_paths([str(pkg_dir)])
    assert result.ok, "\n".join(
        f.location() + ": " + f.rule for f in result.sorted_findings()
    )


_CHECKS: List[Tuple[str, Callable[[], None]]] = [
    ("float environment", _check_environment),
    ("core superaccumulators", _check_core),
    ("adaptive tiered engine", _check_adaptive),
    ("sequential baselines", _check_baselines),
    ("PRAM algorithms", _check_pram),
    ("external memory", _check_extmem),
    ("MapReduce", _check_mapreduce),
    ("BSP allreduce", _check_bsp),
    ("geometry predicates", _check_geometry),
    ("exact statistics", _check_stats),
    ("kernel registry", _check_kernels),
    ("binned fold", _check_binned),
    ("backend planner", _check_plan),
    ("serving plane", _check_serve),
    ("cluster plane", _check_cluster),
    ("static analysis", _check_analysis),
]


def run_selftest(verbose: bool = True) -> bool:
    """Run the battery; returns True on a fully passing install."""
    ok = True
    for name, check in _CHECKS:
        try:
            check()
            status = "ok"
        except AssertionError as exc:
            status = f"FAIL ({exc})"
            ok = False
        except Exception as exc:  # import/runtime breakage
            status = f"ERROR ({type(exc).__name__}: {exc})"
            ok = False
        if verbose:
            print(f"  {name:<24s} {status}")
    if verbose:
        print("selftest:", "PASS" if ok else "FAIL")
    return ok
