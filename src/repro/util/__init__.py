"""Shared utilities: bit manipulation, validation, timing."""

from repro.util.bits import (
    bit_length,
    floor_div,
    floor_mod,
    trailing_zeros,
)
from repro.util.capabilities import capability_report, has_numba, load_numba
from repro.util.timing import Timer
from repro.util.validation import (
    check_finite_array,
    check_positive_int,
    ensure_float64_array,
)

__all__ = [
    "bit_length",
    "floor_div",
    "floor_mod",
    "trailing_zeros",
    "Timer",
    "capability_report",
    "has_numba",
    "load_numba",
    "check_finite_array",
    "check_positive_int",
    "ensure_float64_array",
]
