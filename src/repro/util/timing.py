"""Lightweight wall-clock timing for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer"]


@dataclass
class Timer:
    """Accumulating monotonic stopwatch.

    Usage::

        t = Timer()
        with t:
            work()
        print(t.elapsed)

    Multiple ``with`` blocks accumulate into :attr:`elapsed`, which the
    harness uses to time repeated phases (e.g. per-round MapReduce cost)
    without allocating a timer per phase.
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed += time.perf_counter() - self._start

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
