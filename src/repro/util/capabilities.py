"""Optional-dependency capability probes (the single numba gate).

Every optional native acceleration in this package funnels through
this module: nothing else imports — or even ``find_spec``s — numba, so
the seed install path (pure numpy) is untouched, and a broken optional
install degrades to one clear report instead of scattered
``ImportError``s from whichever plane happened to fold first.

Probes are deliberately two-phase:

* :func:`has_numba` is *cheap*: an ``importlib.util.find_spec`` check,
  used at registration time to decide whether the ``binned_jit``
  kernel should appear in the registry at all. It never imports numba
  (a full numba import costs seconds of LLVM setup).
* :func:`load_numba` actually imports the module, once, on first use
  (when a jitted fold first compiles) and caches the outcome —
  including a *failed* import, so a broken numba install costs one
  diagnostic, not one per fold.

:func:`capability_report` is the flat summary the planner's
``--explain`` output and ``benchmarks/harness.bench_stamp()`` embed.
"""

from __future__ import annotations

import importlib.util
import os
from types import ModuleType
from typing import Any, Dict, Optional

__all__ = [
    "has_numba",
    "load_numba",
    "numba_version",
    "numba_num_threads",
    "capability_report",
]

#: Sentinel distinguishing "not probed yet" from "probed, unavailable".
_UNPROBED = object()

_numba_module: Any = _UNPROBED


def has_numba() -> bool:
    """Whether a numba distribution is installed (no import performed)."""
    if _numba_module is not _UNPROBED:
        return _numba_module is not None
    try:
        return importlib.util.find_spec("numba") is not None
    except (ImportError, ValueError):  # broken/namespace-mangled installs
        return False


def load_numba() -> Optional[ModuleType]:
    """Import and return numba, or ``None`` when absent/broken (cached)."""
    global _numba_module
    if _numba_module is _UNPROBED:
        try:
            import numba
        except Exception:  # ImportError or any init-time LLVM failure
            _numba_module = None
        else:
            _numba_module = numba
    return _numba_module  # type: ignore[no-any-return]


def numba_version() -> Optional[str]:
    """Installed numba version string without forcing a full import.

    Reads distribution metadata when numba has not been loaded yet;
    asks the module itself when it has.
    """
    if isinstance(_numba_module, ModuleType):
        return str(getattr(_numba_module, "__version__", "unknown"))
    if not has_numba():
        return None
    try:
        from importlib.metadata import version

        return version("numba")
    except Exception:
        return "unknown"


def numba_num_threads() -> int:
    """Threads a ``parallel=True`` jitted fold would use.

    Exact when numba is already loaded; otherwise numba's own default
    rule (``NUMBA_NUM_THREADS`` env override, else the CPU count) —
    without paying the import just to stamp a benchmark record.
    """
    if isinstance(_numba_module, ModuleType):
        try:
            return int(_numba_module.get_num_threads())
        except Exception:
            pass
    env = os.environ.get("NUMBA_NUM_THREADS", "")
    if env.isdigit() and int(env) > 0:
        return int(env)
    return os.cpu_count() or 1


def capability_report() -> Dict[str, Any]:
    """Flat capability summary (planner ``--explain``, bench stamps)."""
    available = has_numba()
    return {
        "numba": available,
        "numba_version": numba_version() if available else None,
        "numba_threads": numba_num_threads() if available else 1,
    }
