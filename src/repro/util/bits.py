"""Small integer/bit helpers used by the digit machinery.

These mirror hardware idioms (floored division, trailing-zero count)
with exact Python-integer semantics so the scalar reference paths and
the vectorized NumPy paths agree bit-for-bit.
"""

from __future__ import annotations

import math
import struct

__all__ = [
    "bit_length",
    "floor_div",
    "floor_mod",
    "same_float",
    "trailing_zeros",
]


def same_float(a: float, b: float) -> bool:
    """True when ``a`` and ``b`` carry the same IEEE-754 bit pattern.

    The correctly-rounded contract is *bit identity*, which plain
    ``==`` does not test: ``0.0 == -0.0`` is true and ``nan == nan``
    is false, yet the first pair differs in bits and the second pair
    (for a quiet NaN of the same payload) does not. Use this helper —
    not ``==`` — whenever two results are asserted identical.
    """
    if math.isnan(a) or math.isnan(b):
        # reprolint: disable-next-line=ARCH001 -- bit-pattern compare, not wire framing
        return struct.pack("<d", a) == struct.pack("<d", b)
    # reprolint: disable-next-line=FP002 -- this IS the one sanctioned bit-identity site
    return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)


def bit_length(value: int) -> int:
    """Number of bits needed to represent ``abs(value)``.

    ``bit_length(0) == 0``, matching :meth:`int.bit_length`.
    """
    return abs(int(value)).bit_length()


def floor_div(a: int, b: int) -> int:
    """Floored division, explicit alias for readability at call sites.

    Python's ``//`` already floors; NumPy integer ``//`` floors too, so
    both paths agree for negative operands (unlike C truncation).
    """
    return a // b


def floor_mod(a: int, b: int) -> int:
    """Floored modulus paired with :func:`floor_div` (result sign of ``b``)."""
    return a % b


def trailing_zeros(value: int) -> int:
    """Count of trailing zero bits of a nonzero integer.

    Raises:
        ValueError: if ``value`` is zero (infinitely many trailing zeros).
    """
    value = int(value)
    if value == 0:
        raise ValueError("trailing_zeros undefined for 0")
    return (value & -value).bit_length() - 1
