"""Argument validation helpers shared across the package."""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import NonFiniteInputError

__all__ = ["ensure_float64_array", "check_finite_array", "check_positive_int"]


def ensure_float64_array(values: Any) -> np.ndarray:
    """Return ``values`` as a contiguous 1-D float64 array (view if possible).

    Accepts any array-like of real numbers. Does *not* check finiteness;
    pair with :func:`check_finite_array` where NaN/inf must be rejected.
    """
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


def check_finite_array(arr: np.ndarray, *, what: str = "input") -> None:
    """Raise :class:`NonFiniteInputError` if ``arr`` has NaN or infinities."""
    if arr.size and not np.isfinite(arr).all():
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise NonFiniteInputError(
            f"{what} contains a non-finite value at index {bad}: {arr[bad]!r}"
        )


def check_positive_int(value: Any, *, name: str) -> int:
    """Return ``value`` as a positive ``int`` or raise ``ValueError``."""
    ivalue = int(value)
    if ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return ivalue
