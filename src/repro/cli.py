"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — write one of the four experimental distributions to a
  ``.f64`` dataset file;
* ``sum`` — exactly sum a dataset file with a chosen algorithm and
  print the correctly rounded result (hex and decimal);
* ``info`` — dataset diagnostics: n, exponent span, condition number,
  exact sum vs naive sum;
* ``plan`` — show which execution plane / kernel / tier the backend
  planner (:mod:`repro.plan`) would schedule for a given input shape;
* ``serve`` — run the sharded exact-aggregation service
  (:mod:`repro.serve`) until SIGINT or a client ``shutdown`` op;
* ``lint`` — run reprolint (:mod:`repro.analysis`), the AST
  float-safety & architecture-invariant linter, over a source tree.

Example::

    python -m repro generate sumzero /tmp/d.f64 -n 1000000 --delta 500
    python -m repro sum /tmp/d.f64 --method mapreduce-sparse --workers 8
    python -m repro info /tmp/d.f64
    python -m repro plan --file /tmp/d.f64 --workers 8
    python -m repro serve --port 8765 --shards 4 --state-path /tmp/state.json
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.baselines import hybrid_sum, ifastsum
from repro.core import condition_number, exact_sum
from repro.core.fpinfo import exponent_span
from repro.data import DISTRIBUTIONS, generate, read_dataset, write_dataset
from repro.mapreduce import parallel_sum
from repro.util.bits import same_float

__all__ = ["main"]

_METHODS: Dict[str, Callable[[np.ndarray, argparse.Namespace], float]] = {
    "adaptive": lambda x, a: exact_sum(x, method="adaptive"),
    "binned": lambda x, a: exact_sum(x, method="binned"),
    "sparse": lambda x, a: exact_sum(x, method="sparse"),
    "small": lambda x, a: exact_sum(x, method="small"),
    "dense": lambda x, a: exact_sum(x, method="dense"),
    "ifastsum": lambda x, a: ifastsum(x),
    "hybrid": lambda x, a: hybrid_sum(x),
    "mapreduce-sparse": lambda x, a: parallel_sum(
        x, method="sparse", workers=a.workers, executor="auto"
    ),
    "mapreduce-small": lambda x, a: parallel_sum(
        x, method="small", workers=a.workers, executor="auto"
    ),
    # reprolint: disable-next-line=FP003 -- 'naive' is the measured control, not a sum path
    "naive": lambda x, a: float(np.sum(x)),
}


def _cmd_generate(args: argparse.Namespace) -> int:
    data = generate(args.distribution, args.n, delta=args.delta, seed=args.seed)
    count = write_dataset(args.path, data)
    print(f"wrote {count:,} values ({args.distribution}, delta={args.delta}, "
          f"seed={args.seed}) to {args.path}")
    return 0


def _cmd_sum(args: argparse.Namespace) -> int:
    data = read_dataset(args.path)
    fn = _METHODS[args.method]
    t0 = time.perf_counter()
    result = fn(data, args)
    elapsed = time.perf_counter() - t0
    print(f"method : {args.method}")
    print(f"n      : {data.size:,}")
    print(f"sum    : {result!r}")
    print(f"hex    : {result.hex() if result == result else 'nan'}")
    print(f"time   : {elapsed:.4f} s")
    if args.check and args.method != "naive":
        ref = exact_sum(data, method="sparse")
        ok = same_float(result, ref)
        print(f"check  : {'OK (correctly rounded)' if ok else f'MISMATCH vs {ref!r}'}")
        if not ok:
            return 1
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    data = read_dataset(args.path)
    print(f"n              : {data.size:,}")
    if data.size == 0:
        return 0
    print(f"exponent span  : {exponent_span(data)}")
    print(f"min / max      : {data.min():.6g} / {data.max():.6g}")
    exact = exact_sum(data)
    naive = float(np.sum(data))  # reprolint: disable=FP003 -- diagnostic shows the naive error
    print(f"exact sum      : {exact!r}")
    print(f"naive np.sum   : {naive!r}")
    print(f"naive correct  : {same_float(naive, exact)}")
    cond = condition_number(data)
    print(f"condition C(X) : {cond:.6g}")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.plan import DataDescriptor, plan_sum

    if (args.file is None) == (args.n is None):
        print("plan: give exactly one of --file or --n", file=sys.stderr)
        return 2
    workers = args.workers or 1
    if args.file is not None:
        desc = DataDescriptor.describe_file(args.file, workers=workers)
    else:
        desc = DataDescriptor(n=args.n, layout="memory", workers=workers)
    try:
        plan = plan_sum(desc, kernel=args.kernel, mode=args.mode)
    except ValueError as exc:
        print(f"plan: {exc}", file=sys.stderr)
        return 2
    info = plan.describe()
    for key in ("plane", "kernel", "tier", "workers", "block_items", "n", "layout"):
        print(f"{key:<12s}: {info[key]:,}" if isinstance(info[key], int)
              else f"{key:<12s}: {info[key]}")
    print(f"{'reason':<12s}: {info['reason']}")
    if args.explain:
        print("candidates  :")
        for cand in plan.candidates:
            mark = "+" if cand.accepted else "-"
            chosen = "  (selected)" if cand.name == plan.kernel else ""
            print(f"  {mark} {cand.name:<12s}{chosen} {cand.reason}")
    if args.run:
        if args.file is None:
            print("plan: --run needs --file (no data for a size-only plan)",
                  file=sys.stderr)
            return 2
        t0 = time.perf_counter()
        result = plan.execute()
        elapsed = time.perf_counter() - t0
        print(f"{'sum':<12s}: {result!r}")
        print(f"{'time':<12s}: {elapsed:.4f} s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="exact floating-point summation toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="write an experimental dataset")
    g.add_argument("distribution", choices=sorted(DISTRIBUTIONS))
    g.add_argument("path")
    g.add_argument("-n", type=int, default=1_000_000)
    g.add_argument("--delta", type=int, default=2000)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(fn=_cmd_generate)

    s = sub.add_parser("sum", help="sum a dataset file")
    s.add_argument("path")
    s.add_argument("--method", choices=sorted(_METHODS), default="sparse")
    s.add_argument("--workers", type=int, default=None)
    s.add_argument("--check", action="store_true",
                   help="verify against the sparse superaccumulator")
    s.set_defaults(fn=_cmd_sum)

    i = sub.add_parser("info", help="dataset diagnostics")
    i.add_argument("path")
    i.set_defaults(fn=_cmd_info)

    p = sub.add_parser("plan", help="show the backend planner's decision")
    p.add_argument("--file", default=None, help="plan for a .f64 dataset file")
    p.add_argument("--n", type=int, default=None,
                   help="plan for an in-memory array of this size")
    p.add_argument("--workers", type=int, default=None)
    p.add_argument("--kernel", default=None,
                   help="force a kernel (default: planner's choice)")
    p.add_argument("--mode", default="nearest",
                   help="rounding mode the plan must honor")
    p.add_argument("--explain", action="store_true",
                   help="show why each candidate kernel was accepted or rejected")
    p.add_argument("--run", action="store_true",
                   help="execute the plan (needs --file)")
    p.set_defaults(fn=_cmd_plan)

    t = sub.add_parser("selftest", help="fast whole-install verification")
    t.set_defaults(fn=_cmd_selftest)

    from repro.analysis.cli import add_lint_parser

    add_lint_parser(sub)

    v = sub.add_parser("serve", help="run the exact-aggregation service")
    v.add_argument("--host", default="127.0.0.1")
    v.add_argument("--port", type=int, default=8765,
                   help="TCP port (0 picks an ephemeral port)")
    v.add_argument("--shards", type=int, default=4)
    v.add_argument("--queue-depth", type=int, default=256,
                   help="per-shard ingest queue bound (backpressure)")
    v.add_argument("--policy", choices=["block", "reject"], default="block",
                   help="overload policy: block producers or reject with retry-after")
    v.add_argument("--state-path", default=None,
                   help="snapshot file: restored on start if present, saved on shutdown")
    v.add_argument("--no-shutdown-op", action="store_true",
                   help="ignore client 'shutdown' requests")
    v.set_defaults(fn=_cmd_serve)

    c = sub.add_parser("cluster", help="distributed exact-summation cluster")
    csub = c.add_subparsers(dest="cluster_command", required=True)

    cn = csub.add_parser("node", help="run one WAL-backed cluster node process")
    cn.add_argument("--id", required=True, help="node id (stable across restarts)")
    cn.add_argument("--host", default="127.0.0.1")
    cn.add_argument("--port", type=int, default=0,
                    help="TCP port (0 picks an ephemeral port)")
    cn.add_argument("--wal", default=None,
                    help="write-ahead log path (replayed on start)")
    cn.add_argument("--shards", type=int, default=2)
    cn.add_argument("--kernel", default="running")
    cn.set_defaults(fn=_cmd_cluster_node)

    cs = csub.add_parser("spawn", help="spawn a local N-node cluster")
    cs.add_argument("--dir", required=True,
                    help="cluster directory (WALs + cluster.json spec)")
    cs.add_argument("-n", "--nodes", type=int, default=3)
    cs.add_argument("--shards", type=int, default=2)
    cs.add_argument("--kernel", default="running")
    cs.add_argument("--replication", type=int, default=2)
    cs.set_defaults(fn=_cmd_cluster_spawn)

    ct = csub.add_parser("status", help="probe every node in a cluster spec")
    ct.add_argument("--dir", required=True)
    ct.set_defaults(fn=_cmd_cluster_status)

    ck = csub.add_parser("kill-node", help="SIGKILL one node of a spawned cluster")
    ck.add_argument("--dir", required=True)
    ck.add_argument("--id", required=True)
    ck.set_defaults(fn=_cmd_cluster_kill)
    return parser


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.selftest import run_selftest

    return 0 if run_selftest() else 1


def _wire_stat_lines(wire: dict) -> list:
    """Render a metrics ``wire`` section as aligned report lines."""
    lines = []
    for mode in sorted(wire):
        w = wire[mode]
        mib = w["payload_bytes"] / (1024.0 * 1024.0)
        lines.append(
            f"  wire[{mode}]: {int(w['frames'])} frame(s), "
            f"{int(w['values'])} value(s), {mib:.2f} MiB payload "
            f"({w['mean_values_per_frame']:.1f} values/frame, "
            f"{w['payload_bytes_per_s'] / 1e6:.2f} MB/s)"
        )
    return lines


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.serve import ReproServer, ReproService, ServeConfig

    async def run() -> int:
        config = ServeConfig(
            shards=args.shards,
            queue_depth=args.queue_depth,
            policy=args.policy,
            allow_shutdown=not args.no_shutdown_op,
        )
        service = ReproService(config)
        await service.start()
        if args.state_path and os.path.exists(args.state_path):
            restored = await service.load_state(args.state_path)
            print(f"restored {restored} stream(s) from {args.state_path}")
        server = ReproServer(service, args.host, args.port)
        await server.start()
        # SIGINT/SIGTERM exit through the same clean path as a client
        # shutdown op, so --state-path snapshots survive Ctrl-C.
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass
        print(
            f"repro serve listening on {args.host}:{server.port} "
            f"(shards={args.shards}, queue_depth={args.queue_depth}, "
            f"policy={args.policy})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            snapshot = service.metrics.snapshot()
            if snapshot["wire"]:
                print("ingest wire summary:")
                for line in _wire_stat_lines(snapshot["wire"]):
                    print(line)
            if args.state_path:
                saved = await service.save_state(args.state_path)
                print(f"saved {saved} stream(s) to {args.state_path}")
            await service.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        print("interrupted; shut down cleanly")
        return 0


def _cmd_cluster_node(args: argparse.Namespace) -> int:
    from repro.cluster.launcher import serve_node

    try:
        return serve_node(
            args.id,
            host=args.host,
            port=args.port,
            wal=args.wal,
            shards=args.shards,
            kernel=args.kernel,
        )
    except KeyboardInterrupt:
        return 0


def _cmd_cluster_spawn(args: argparse.Namespace) -> int:
    from repro.cluster.launcher import spawn_local_cluster

    procs = spawn_local_cluster(
        args.nodes,
        args.dir,
        shards=args.shards,
        kernel=args.kernel,
        replication=args.replication,
    )
    for proc in procs:
        spec = proc.spec()
        print(f"{spec.node_id:<10s} {spec.host}:{spec.port}  pid={spec.pid}  "
              f"wal={spec.wal}")
    print(f"cluster of {len(procs)} node(s) spawned; spec in "
          f"{args.dir}/cluster.json")
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import ClusterCoordinator, RemoteNodeHandle, load_spec

    specs = load_spec(args.dir)

    async def run() -> int:
        handles = [
            RemoteNodeHandle(s.node_id, s.host, s.port, timeout=5.0)
            for s in specs
        ]
        coordinator = ClusterCoordinator(handles)
        try:
            health = await coordinator.ping_all()
            wire_stats = {}
            for handle in handles:
                if not health[handle.node_id]:
                    continue
                try:
                    resp = await handle.request("stats")
                    wire_stats[handle.node_id] = resp["stats"].get("wire", {})
                except Exception:
                    wire_stats[handle.node_id] = {}
        finally:
            await coordinator.close()
        down = 0
        for spec in specs:
            state = "up" if health[spec.node_id] else "DOWN"
            down += 0 if health[spec.node_id] else 1
            print(f"{spec.node_id:<10s} {spec.host}:{spec.port:<6d} {state}")
            for line in _wire_stat_lines(wire_stats.get(spec.node_id, {})):
                print(line)
        return 1 if down else 0

    return asyncio.run(run())


def _cmd_cluster_kill(args: argparse.Namespace) -> int:
    import os
    import signal

    from repro.cluster import load_spec

    for spec in load_spec(args.dir):
        if spec.node_id == args.id:
            if spec.pid is None:
                print(f"cluster: no recorded pid for {args.id}", file=sys.stderr)
                return 2
            try:
                os.kill(spec.pid, signal.SIGKILL)
            except ProcessLookupError:
                print(f"{args.id} (pid {spec.pid}) already gone")
                return 0
            print(f"killed {args.id} (pid {spec.pid}); its WAL remains at "
                  f"{spec.wal}")
            return 0
    print(f"cluster: unknown node id {args.id!r}", file=sys.stderr)
    return 2


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
