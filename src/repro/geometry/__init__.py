"""Computational geometry on exact summation (the paper's application).

* :func:`orient2d` / :func:`orient2d_fast` / :func:`orient3d` /
  :func:`incircle` — exact predicates (signs of small determinants);
* :func:`exact_det` — correctly rounded small determinants;
* :func:`signed_area` / :func:`is_convex` / :func:`polygon_contains` —
  exact polygon measures;
* :func:`convex_hull` — robust monotone-chain hull.
"""

from repro.geometry.hull import convex_hull
from repro.geometry.polygon import (
    centroid_times_area,
    is_convex,
    polygon_contains,
    signed_area,
)
from repro.geometry.predicates import (
    exact_det,
    exact_det_sign,
    incircle,
    orient2d,
    orient2d_fast,
    orient3d,
    product_expansion,
)

__all__ = [
    "convex_hull",
    "centroid_times_area",
    "is_convex",
    "polygon_contains",
    "signed_area",
    "exact_det",
    "exact_det_sign",
    "incircle",
    "orient2d",
    "orient2d_fast",
    "orient3d",
    "product_expansion",
]
