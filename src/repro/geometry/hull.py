"""Robust convex hull (Andrew's monotone chain + exact orientation).

The canonical consumer of an exact orientation predicate: with float
orientation, nearly-collinear inputs produce hulls that are non-convex,
self-intersecting, or miss extreme points; with the exact predicate the
output is the true hull for the given float coordinates, always.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.predicates import orient2d_fast

__all__ = ["convex_hull"]


def convex_hull(points: Sequence[Sequence[float]]) -> List[Tuple[float, float]]:
    """Convex hull in counter-clockwise order, exact decisions.

    Collinear boundary points are dropped (strict turns only), matching
    the usual minimal-vertex hull definition. Duplicate input points
    are handled. Uses the adaptive predicate, so the common case costs
    the same as a float-only hull.
    """
    pts = sorted({(float(p[0]), float(p[1])) for p in np.asarray(points, dtype=np.float64)})
    if len(pts) <= 2:
        return list(pts)

    def build(seq):
        chain: List[Tuple[float, float]] = []
        for p in seq:
            while (
                len(chain) >= 2
                and orient2d_fast(
                    chain[-2][0], chain[-2][1], chain[-1][0], chain[-1][1], p[0], p[1]
                )
                <= 0
            ):
                chain.pop()
            chain.append(p)
        return chain

    lower = build(pts)
    upper = build(reversed(pts))
    return lower[:-1] + upper[:-1]
