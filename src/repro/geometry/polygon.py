"""Exact polygon measures via superaccumulator summation.

The shoelace formula is a long alternating sum of products — exactly
the cancellation-prone shape the paper's exact summation fixes. All
routines here expand products error-free and round once at the end, so
areas and centroids are correctly rounded floats regardless of where
the polygon sits in the plane.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.exact import exact_sum
from repro.geometry.predicates import orient2d, product_expansion

__all__ = ["signed_area", "polygon_contains", "is_convex", "centroid_times_area"]


def _shoelace_terms(points: np.ndarray) -> List[float]:
    """Error-free expansion of ``sum(x_i*y_{i+1} - x_{i+1}*y_i)``."""
    x = points[:, 0]
    y = points[:, 1]
    xn = np.roll(x, -1)
    yn = np.roll(y, -1)
    terms: List[float] = []
    for i in range(points.shape[0]):
        terms.extend(product_expansion([float(x[i]), float(yn[i])]))
        terms.extend(-t for t in product_expansion([float(xn[i]), float(y[i])]))
    return terms


def signed_area(points: Sequence[Sequence[float]]) -> float:
    """Correctly rounded signed area (positive = counter-clockwise).

    The exact shoelace sum is computed with a superaccumulator and
    halved at the end (an exact operation in binary floating point).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] < 3:
        raise ValueError("signed_area needs an (n >= 3, 2) point array")
    return 0.5 * exact_sum(np.array(_shoelace_terms(pts)))


def centroid_times_area(points: Sequence[Sequence[float]]) -> Tuple[float, float]:
    """``(Cx * 6A, Cy * 6A)`` computed exactly, rounded once each.

    The centroid itself needs a division (not exactly representable);
    returning the exact numerators lets callers choose their own final
    precision. Divide by ``6 * signed_area(points)`` for the centroid.
    """
    pts = np.asarray(points, dtype=np.float64)
    x = pts[:, 0]
    y = pts[:, 1]
    xn = np.roll(x, -1)
    yn = np.roll(y, -1)
    tx: List[float] = []
    ty: List[float] = []
    for i in range(pts.shape[0]):
        # cross_i = x_i*y_{i+1} - x_{i+1}*y_i  (degree-3 monomials below)
        for sgn, mono in (
            (1.0, [float(x[i]), float(x[i]), float(yn[i])]),
            (1.0, [float(x[i]), float(xn[i]), float(yn[i])]),
            (-1.0, [float(x[i]), float(xn[i]), float(y[i])]),
            (-1.0, [float(xn[i]), float(xn[i]), float(y[i])]),
        ):
            exp = product_expansion(mono)
            tx.extend(sgn * t for t in exp)
        # (y_i + y_{i+1}) * (x_i y_{i+1} - x_{i+1} y_i), expanded:
        for sgn, mono in (
            (1.0, [float(x[i]), float(y[i]), float(yn[i])]),
            (1.0, [float(x[i]), float(yn[i]), float(yn[i])]),
            (-1.0, [float(xn[i]), float(y[i]), float(y[i])]),
            (-1.0, [float(xn[i]), float(yn[i]), float(y[i])]),
        ):
            exp = product_expansion(mono)
            ty.extend(sgn * t for t in exp)
    return exact_sum(np.array(tx)), exact_sum(np.array(ty))


def is_convex(points: Sequence[Sequence[float]]) -> bool:
    """Exact convexity test: all turns the same way (collinear allowed).

    Uses the exact orientation predicate at every vertex, so slivers
    thinner than float epsilon are classified correctly.
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    if n < 3:
        raise ValueError("need at least 3 vertices")
    seen_pos = seen_neg = False
    for i in range(n):
        a, b, c = pts[i], pts[(i + 1) % n], pts[(i + 2) % n]
        o = orient2d(a[0], a[1], b[0], b[1], c[0], c[1])
        if o > 0:
            seen_pos = True
        elif o < 0:
            seen_neg = True
        if seen_pos and seen_neg:
            return False
    return True


def polygon_contains(points: Sequence[Sequence[float]], q: Sequence[float]) -> bool:
    """Exact point-in-polygon (boundary counts as inside).

    Ray-crossing with the exact orientation predicate deciding every
    edge side, so points within an ulp of an edge are classified by the
    true geometry instead of rounding noise.
    """
    pts = np.asarray(points, dtype=np.float64)
    qx, qy = float(q[0]), float(q[1])
    n = pts.shape[0]
    inside = False
    for i in range(n):
        ax, ay = float(pts[i][0]), float(pts[i][1])
        bx, by = float(pts[(i + 1) % n][0]), float(pts[(i + 1) % n][1])
        o = orient2d(ax, ay, bx, by, qx, qy)
        if o == 0 and min(ax, bx) <= qx <= max(ax, bx) and min(ay, by) <= qy <= max(ay, by):
            return True  # exactly on the edge
        if (ay > qy) != (by > qy):
            # crossing iff q is strictly left of edge a->b as seen going up
            upward = by > ay
            if (o > 0) == upward and o != 0:
                inside = not inside
    return inside
