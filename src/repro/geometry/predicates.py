"""Exact geometric predicates built on exact summation.

Computational geometry is the paper's headline application: geometric
predicates are signs of small determinants, and a single wrong sign
(from float round-off) derails hulls, triangulations, and meshes. This
module computes such determinants **exactly** by (1) expanding every
monomial error-free with TwoProduct into a list of floats whose sum is
exactly the monomial, and (2) summing all terms with a sparse
superaccumulator. The result's *sign* is therefore always correct.

An adaptive fast path (Shewchuk-style floating-point filter) evaluates
the float determinant with a forward error bound first and only falls
through to the exact evaluation when the sign is in doubt — keeping
the common case at float speed.
"""

from __future__ import annotations

from itertools import permutations
from typing import List, Sequence

import numpy as np

from repro.core.eft import two_product, two_sum
from repro.core.exact import exact_sum

__all__ = [
    "product_expansion",
    "exact_det",
    "exact_det_sign",
    "orient2d",
    "orient2d_fast",
    "orient3d",
    "incircle",
]

# Unit roundoff of binary64.
_U = 2.0**-53


def product_expansion(factors: Sequence[float]) -> List[float]:
    """Floats whose sum is *exactly* ``prod(factors)``.

    Multiplying a k-term expansion by a float with TwoProduct +
    TwoSum doubles the term count, so a product of ``m`` floats yields
    at most ``2**(m-1)`` terms. Intended for the tiny ``m <= 4`` of
    geometric predicates.
    """
    terms = [float(factors[0])]
    for f in factors[1:]:
        f = float(f)
        new_terms: List[float] = []
        carry = 0.0
        for t in terms:
            p, e = two_product(t, f)
            # fold the running partials with TwoSum to keep everything exact
            if e != 0.0:  # reprolint: disable=FP002 -- EFT residual is exact; zero test drops true zeros
                new_terms.append(e)
            s, c = two_sum(carry, p)
            carry = s
            if c != 0.0:  # reprolint: disable=FP002 -- EFT residual is exact; zero test drops true zeros
                new_terms.append(c)
        if carry != 0.0:  # reprolint: disable=FP002 -- EFT residual is exact; zero test drops true zeros
            new_terms.append(carry)
        terms = new_terms if new_terms else [0.0]
    return terms


_PARITY_CACHE = {}


def _signed_permutations(n: int):
    """All (sign, permutation) pairs of S_n, cached."""
    if n not in _PARITY_CACHE:
        perms = []
        for p in permutations(range(n)):
            inversions = sum(
                1 for i in range(n) for j in range(i + 1, n) if p[i] > p[j]
            )
            perms.append((-1.0 if inversions % 2 else 1.0, p))
        _PARITY_CACHE[n] = perms
    return _PARITY_CACHE[n]


def exact_det(matrix: Sequence[Sequence[float]]) -> float:
    """Correctly rounded determinant of a small float matrix.

    Leibniz expansion: each of the ``n!`` permutation products is
    expanded error-free; all terms are summed exactly; one rounding at
    the end. Practical for ``n <= 4`` (the predicate sizes).
    """
    m = [[float(v) for v in row] for row in matrix]
    n = len(m)
    if any(len(row) != n for row in m):
        raise ValueError("exact_det requires a square matrix")
    if n == 0:
        return 1.0
    if n > 5:
        raise ValueError("exact_det is for small predicate matrices (n <= 5)")
    terms: List[float] = []
    for sign, perm in _signed_permutations(n):
        factors = [m[i][perm[i]] for i in range(n)]
        expansion = product_expansion(factors)
        if sign > 0:
            terms.extend(expansion)
        else:
            terms.extend(-t for t in expansion)
    return exact_sum(np.array(terms, dtype=np.float64))


def exact_det_sign(matrix: Sequence[Sequence[float]]) -> int:
    """Sign of the exact determinant: -1, 0, or +1."""
    d = exact_det(matrix)
    return (d > 0) - (d < 0)


def orient2d(ax: float, ay: float, bx: float, by: float, cx: float, cy: float) -> int:
    """Exact orientation of the triangle (a, b, c).

    Returns +1 for counter-clockwise, -1 for clockwise, 0 for exactly
    collinear — always, for any float inputs.
    """
    return exact_det_sign(
        [
            [ax, ay, 1.0],
            [bx, by, 1.0],
            [cx, cy, 1.0],
        ]
    )


def orient2d_fast(
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float
) -> int:
    """Adaptive orientation: float filter first, exact fallback.

    The float path evaluates ``(b-a) x (c-a)`` with Shewchuk's error
    bound for this expression; if the magnitude clears the bound the
    sign is certain, otherwise the exact predicate decides. Same
    contract as :func:`orient2d`.
    """
    detleft = (ax - cx) * (by - cy)
    detright = (ay - cy) * (bx - cx)
    det = detleft - detright
    if detleft > 0.0:
        if detright <= 0.0:
            return 1
        detsum = detleft + detright
    elif detleft < 0.0:
        if detright >= 0.0:
            return -1
        detsum = -detleft - detright
    else:
        return exact_det_sign([[ax, ay, 1.0], [bx, by, 1.0], [cx, cy, 1.0]])
    # Shewchuk's ccwerrboundA = (3 + 16u) u
    errbound = (3.0 + 16.0 * _U) * _U * detsum
    if det > errbound or -det > errbound:
        return (det > 0) - (det < 0)
    return exact_det_sign([[ax, ay, 1.0], [bx, by, 1.0], [cx, cy, 1.0]])


def orient3d(
    a: Sequence[float], b: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> int:
    """Exact 3D orientation: sign of det[[a,1],[b,1],[c,1],[d,1]].

    +1 when ``d`` is below the plane through (a, b, c) oriented by the
    right-hand rule, -1 above, 0 exactly coplanar.
    """
    return exact_det_sign(
        [
            [a[0], a[1], a[2], 1.0],
            [b[0], b[1], b[2], 1.0],
            [c[0], c[1], c[2], 1.0],
            [d[0], d[1], d[2], 1.0],
        ]
    )


def incircle(
    a: Sequence[float], b: Sequence[float], c: Sequence[float], d: Sequence[float]
) -> int:
    """Exact in-circle test for Delaunay triangulation.

    +1 when ``d`` lies strictly inside the circle through (a, b, c)
    taken in counter-clockwise order, -1 strictly outside, 0 exactly on
    the circle. (For clockwise (a,b,c) the sign flips, as usual.)

    Uses the lifted 4x4 determinant with rows ``[x, y, x^2 + y^2, 1]``.
    The squared terms are expanded error-free (``x*x`` and ``y*y`` as
    separate exact monomial streams), so no precision is lost anywhere.
    """
    pts = [a, b, c, d]
    # Build the Leibniz expansion manually because the lifted column is
    # itself a sum of two monomials: treat column 2 as two columns'
    # worth of monomials x*x and y*y (determinant is linear in columns).
    terms: List[float] = []
    for sign, perm in _signed_permutations(4):
        # column order: [x, y, lift, 1]
        monomial_sets: List[List[List[float]]] = [[[]]]
        for row in range(4):
            col = perm[row]
            x, y = float(pts[row][0]), float(pts[row][1])
            if col == 0:
                choices = [[x]]
            elif col == 1:
                choices = [[y]]
            elif col == 2:
                choices = [[x, x], [y, y]]  # x^2 + y^2: two monomials
            else:
                choices = [[]]  # the constant 1
            monomial_sets.append(
                [prev + choice for prev in monomial_sets[-1] for choice in choices]
            )
        for monomial in monomial_sets[-1]:
            expansion = (
                product_expansion(monomial) if monomial else [1.0]
            )
            if sign > 0:
                terms.extend(expansion)
            else:
                terms.extend(-t for t in expansion)
    det = exact_sum(np.array(terms, dtype=np.float64))
    return (det > 0) - (det < 0)
