"""Backend planner: pick plane x kernel x tier for a summation task.

Every execution plane in this repo — serial, streaming, serving,
MapReduce, external memory, BSP, PRAM — consumes the same
:class:`~repro.kernels.base.SumKernel` protocol, so "where should this
sum run" is a scheduling decision, not an algorithmic one. This module
makes that decision explicit and inspectable:

* :class:`DataDescriptor` says what the input looks like (size, whether
  it is already in memory or sitting in a ``.f64`` dataset file, how
  many workers the caller can spend);
* :func:`plan_sum` turns a descriptor into a :class:`SumPlan` — the
  chosen plane, kernel and tier plus a human-readable reason;
* :meth:`SumPlan.execute` runs the plan and returns the correctly
  rounded float, bit-identical across every choice the planner could
  have made (that is the whole point of the kernel protocol).

:func:`run_plane` is the shared dispatch the planner, the ``repro
plan`` CLI and the cross-plane bit-identity matrix test all use, so a
plane listed in :data:`PLANES` is by construction a plane the planner
can schedule onto and the test suite checks.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.kernels import get_kernel, kernel_names, kernel_sum

__all__ = [
    "DataDescriptor",
    "SumPlan",
    "KernelCandidate",
    "kernel_candidates",
    "plan_sum",
    "run_plane",
    "PLANES",
    "KERNEL_RATES",
    "OPTIONAL_KERNEL_REQUIREMENTS",
]

#: Default items per block, shared with the MapReduce driver.
DEFAULT_BLOCK_ITEMS = 1 << 17

#: In-memory inputs below this size never leave the serial plane: the
#: cost of standing up workers exceeds folding the data where it lies.
SMALL_INPUT_ITEMS = 1 << 16

#: Measured single-thread bulk-fold rates in Melem/s on the reference
#: host (``benchmarks/bench_native.py`` → ``BENCH_native.json``,
#: ``kernel_rates_melem_per_s``: the median over the largest cells,
#: n = 2**22; ``adaptive`` from ``BENCH_adaptive.json``, the tier-0
#: certified pass on the well-conditioned n = 2**20 cell — its worst
#: case is one exact escalation on top). Only the relative order
#: matters to the planner — it ranks candidate kernels by these and
#: picks the fastest one that is actually available — so a different
#: host changes the margins, not the decisions. ``binned_jit`` is
#: credited slightly above ``binned`` because its deposit is the same
#: fold run thread-parallel (it cannot be measured on the reference
#: host, which has no numba — the CI optional-deps job covers it);
#: ``running`` and ``truncated`` are unbenched estimates kept below the
#: measured folds they wrap.
KERNEL_RATES: Dict[str, float] = {
    "adaptive": 70.0,
    "binned_jit": 26.0,
    "binned": 24.7,
    "dense": 3.8,
    "small": 3.7,
    "sparse": 3.4,
    "running": 2.7,
    "truncated": 1.8,
}

#: Kernels that exist only when an optional capability is importable,
#: mapped to the capability name :mod:`repro.util.capabilities` probes.
#: The planner lists them in every candidate table (with the rejection
#: reason when absent) but never selects one that is not registered.
OPTIONAL_KERNEL_REQUIREMENTS: Dict[str, str] = {
    "binned_jit": "numba",
}

#: Kernels whose fast fold needs the vectorized int64 digit paths
#: (``w <= 31``); outside that they degrade to sparse-spill speed, so
#: the planner stops preferring them.
_VECTOR_FOLD_KERNELS = frozenset({"binned", "binned_jit"})


@dataclass(frozen=True)
class KernelCandidate:
    """One row of the planner's kernel table: accepted or rejected, why.

    Attributes:
        name: registry (or optional-backend) kernel name.
        accepted: whether the planner may auto-select this kernel for
            the requested mode/radix. Rejected candidates stay in the
            table so ``repro plan --explain`` shows *why* (missing
            capability, directed-mode certification, digit width).
        reason: one line of rationale.
        rate: measured reference rate in Melem/s (None if unbenched).
    """

    name: str
    accepted: bool
    reason: str
    rate: Optional[float] = None


def kernel_candidates(
    mode: str = "nearest",
    radix: RadixConfig = DEFAULT_RADIX,
    op: str = "sum",
) -> List[KernelCandidate]:
    """Rank every kernel (registered or optional) for a reduction task.

    Returns candidates sorted fastest-first by :data:`KERNEL_RATES`;
    the first accepted row is what :func:`plan_sum` picks when the
    caller does not force a kernel. Unavailable backends are present
    but rejected — the capability probe is
    :func:`repro.util.capabilities.has_numba`-cheap, so planning never
    imports an optional dependency.

    ``op`` names a registered reduction (``sum``, ``dot``, ``norm2``,
    ``mean``, ``var``). Ops that finish from the exact accumulated
    fraction (``needs_exact``) reject speculative kernels: a certified
    nearest-rounded *sum* proves nothing about the mean or the square
    root downstream of it.
    """
    from repro.reduce.ops import get_op, kernel_supports

    reduction = get_op(op)
    available = set(kernel_names())
    names = sorted(
        available | set(OPTIONAL_KERNEL_REQUIREMENTS),
        key=lambda n: (-KERNEL_RATES.get(n, 0.0), n),
    )
    out: List[KernelCandidate] = []
    for name in names:
        rate = KERNEL_RATES.get(name)
        if name not in available:
            capability = OPTIONAL_KERNEL_REQUIREMENTS[name]
            out.append(
                KernelCandidate(
                    name,
                    False,
                    f"requires {capability}, which is not installed "
                    f"(pip install 'repro[native]')",
                    rate,
                )
            )
            continue
        k = get_kernel(name, radix=radix)
        if not kernel_supports(reduction, k):
            out.append(
                KernelCandidate(
                    name,
                    False,
                    f"op {op!r} finishes from the exact fraction, which "
                    f"a speculative kernel does not keep; use an exact "
                    f"accumulator",
                    rate,
                )
            )
            continue
        if not k.exact and mode != "nearest":
            out.append(
                KernelCandidate(
                    name,
                    False,
                    f"speculative certificates prove nearest rounding only; "
                    f"mode={mode!r} needs an exact kernel",
                    rate,
                )
            )
            continue
        if name in _VECTOR_FOLD_KERNELS and not radix.supports_vectorized:
            out.append(
                KernelCandidate(
                    name,
                    False,
                    f"w={radix.w} exceeds the vectorized bin-fold limit "
                    f"(31); the fold would degrade to sparse-spill speed",
                    rate,
                )
            )
            continue
        if not k.exact:
            reason = (
                "certified fast paths with exact escalation — fastest "
                "when the input's condition admits a certificate"
            )
        else:
            reason = "exact fold"
        if rate is not None:
            reason += f"; ~{rate:g} Melem/s measured on the reference host"
        out.append(KernelCandidate(name, True, reason, rate))
    return out


# ---------------------------------------------------------------------------
# plane runners


def _chunks(arr: np.ndarray, block_items: int):
    if arr.size == 0:
        yield arr
        return
    for start in range(0, arr.size, block_items):
        yield arr[start : start + block_items]


def _run_serial(kernel_name, values, *, radix, mode, workers, block_items):
    kernel = get_kernel(kernel_name, radix=radix)
    return kernel_sum(kernel, _chunks(values, block_items), mode=mode)


def _run_streaming(kernel_name, values, *, radix, mode, workers, block_items):
    kernel = get_kernel(kernel_name, radix=radix)
    stream = kernel.new_stream()
    for chunk in _chunks(values, block_items):
        kernel.fold_into(stream, chunk)
    return stream.value(mode)


def _run_serve(kernel_name, values, *, radix, mode, workers, block_items):
    import asyncio

    from repro.serve import InProcessClient, ReproService, ServeConfig

    async def run() -> float:
        config = ServeConfig(shards=max(1, workers), kernel=kernel_name)
        async with ReproService(config, radix=radix) as service:
            client = InProcessClient(service)
            for chunk in _chunks(values, block_items):
                await client.add_array("plan", chunk)
            return await client.value("plan", mode=mode)

    return asyncio.run(run())


def _run_cluster(kernel_name, values, *, radix, mode, workers, block_items):
    import asyncio

    from repro.cluster import LocalCluster

    async def run() -> float:
        async with LocalCluster(
            nodes=max(2, workers), kernel=kernel_name, radix=radix, shards=1
        ) as lc:
            for chunk in _chunks(values, block_items):
                await lc.coordinator.scatter("plan", chunk, chunk=block_items)
            result = await lc.coordinator.gather_value("plan", mode=mode)
            return result["value"]

    return asyncio.run(run())


def _run_mapreduce(kernel_name, values, *, radix, mode, workers, block_items):
    from repro.mapreduce import parallel_sum

    return parallel_sum(
        values,
        workers=workers,
        method=kernel_name,
        block_items=block_items,
        radix=radix,
        mode=mode,
    )


def _run_extmem(kernel_name, values, *, radix, mode, workers, block_items):
    from repro.extmem import BlockDevice, ExtArray, extmem_sum_scan

    block = max(8, min(block_items, 1 << 12))
    device = BlockDevice(block_size=block, memory=block * 64)
    source = ExtArray.from_numpy(device, "plan-input", values)
    result = extmem_sum_scan(
        device, source, radix=radix, mode=mode,
        kernel=get_kernel(kernel_name, radix=radix),
    )
    return result.value


def _run_bsp(kernel_name, values, *, radix, mode, workers, block_items):
    from repro.bsp import exact_allreduce_sum

    ranks = max(2, workers)
    result = exact_allreduce_sum(
        np.array_split(np.asarray(values, dtype=np.float64), ranks),
        radix=radix, mode=mode, kernel=get_kernel(kernel_name, radix=radix),
    )
    return result.values[0]


def _run_pram(kernel_name, values, *, radix, mode, workers, block_items):
    from repro.pram import pram_exact_sum

    result = pram_exact_sum(
        values, radix=radix, mode=mode,
        kernel=get_kernel(kernel_name, radix=radix),
    )
    return result.value


#: Every schedulable plane, by name. The bit-identity matrix test walks
#: this mapping, so adding a plane here enrolls it in the invariant.
PLANES = {
    "serial": _run_serial,
    "streaming": _run_streaming,
    "serve": _run_serve,
    "cluster": _run_cluster,
    "mapreduce": _run_mapreduce,
    "extmem": _run_extmem,
    "bsp": _run_bsp,
    "pram": _run_pram,
}


def run_plane(
    plane: str,
    kernel_name: str,
    values,
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    workers: int = 1,
    block_items: int = DEFAULT_BLOCK_ITEMS,
) -> float:
    """Sum ``values`` on one named plane with one named kernel.

    The uniform entry point behind :meth:`SumPlan.execute`; every plane
    returns the same bits for the same input, whatever the kernel.
    """
    if plane not in PLANES:
        raise ValueError(f"unknown plane {plane!r}; expected one of {sorted(PLANES)}")
    if kernel_name not in kernel_names():
        raise ValueError(
            f"unknown kernel {kernel_name!r}; expected one of {list(kernel_names())}"
        )
    arr = np.asarray(values, dtype=np.float64)
    return PLANES[plane](
        kernel_name, arr, radix=radix, mode=mode,
        workers=workers, block_items=block_items,
    )


# ---------------------------------------------------------------------------
# descriptors and plans


@dataclass
class DataDescriptor:
    """What the planner knows about the input.

    Attributes:
        n: element count (0 allowed).
        layout: ``"memory"`` (an array the caller holds) or ``"file"``
            (a ``.f64`` dataset on disk, summed without loading it all).
        workers: workers the caller is willing to spend (>= 1).
        path: dataset path when ``layout == "file"``.
        values: the array when ``layout == "memory"`` and the caller
            provided one (optional — plans can also be made from sizes
            alone and fed data at execute time).
        op: registered reduction the caller wants (``"sum"`` by
            default). Non-sum ops constrain kernel choice — see
            :func:`kernel_candidates`.
    """

    n: int
    layout: str = "memory"
    workers: int = 1
    path: Optional[str] = None
    values: Optional[np.ndarray] = field(default=None, repr=False)
    op: str = "sum"
    #: second input array for arity-2 ops (``dot``).
    values2: Optional[np.ndarray] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.layout not in ("memory", "file"):
            raise ValueError(f"unknown layout {self.layout!r}")
        if self.n < 0:
            raise ValueError("n must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.layout == "file" and not self.path:
            raise ValueError("file layout needs a path")
        from repro.reduce.ops import op_names

        if self.op not in op_names():
            raise ValueError(
                f"unknown op {self.op!r}; expected one of {op_names()}"
            )

    @classmethod
    def describe_array(
        cls, values, workers: int = 1, *, op: str = "sum", values2=None
    ) -> "DataDescriptor":
        arr = np.asarray(values, dtype=np.float64)
        arr2 = None if values2 is None else np.asarray(values2, dtype=np.float64)
        return cls(
            n=int(arr.size),
            layout="memory",
            workers=workers,
            values=arr,
            op=op,
            values2=arr2,
        )

    @classmethod
    def describe_file(
        cls, path: Union[str, Path], workers: int = 1
    ) -> "DataDescriptor":
        from repro.data import dataset_len

        return cls(
            n=dataset_len(path), layout="file", workers=workers, path=str(path)
        )


@dataclass
class SumPlan:
    """An executable decision: plane x kernel x tier (+ why).

    Attributes:
        plane: key into :data:`PLANES`.
        kernel: registered kernel name.
        tier: ``"speculative"`` (certified fast path, exact escalation
            on a failed proof) or ``"exact"`` (superaccumulator all the
            way down).
        workers: workers the plan will use.
        block_items: fold granularity.
        reason: one line of planner rationale, shown by ``repro plan``.
    """

    plane: str
    kernel: str
    tier: str
    workers: int
    block_items: int
    reason: str
    descriptor: DataDescriptor
    mode: str = "nearest"
    radix: RadixConfig = DEFAULT_RADIX
    #: Full kernel table the decision was made from (``--explain``).
    candidates: List[KernelCandidate] = field(default_factory=list, repr=False)

    def describe(self) -> Dict[str, Any]:
        """Flat summary for printing / JSON."""
        return {
            "plane": self.plane,
            "kernel": self.kernel,
            "op": self.descriptor.op,
            "tier": self.tier,
            "workers": self.workers,
            "block_items": self.block_items,
            "n": self.descriptor.n,
            "layout": self.descriptor.layout,
            "reason": self.reason,
        }

    def execute(
        self, values=None, values2=None, *, mode: Optional[str] = None
    ) -> float:
        """Run the plan; returns the correctly rounded reduction.

        Args:
            values: in-memory data, when the descriptor was built from
                sizes alone. File-layout plans read their dataset.
            values2: second input for arity-2 ops (``dot``).
            mode: overrides the plan's rounding mode.
        """
        if values is None:
            if self.descriptor.layout == "file":
                from repro.data import map_dataset

                values = map_dataset(self.descriptor.path)
            elif self.descriptor.values is not None:
                values = self.descriptor.values
            else:
                raise ValueError("plan has no data; pass values=")
        if values2 is None:
            values2 = self.descriptor.values2
        if self.descriptor.op != "sum":
            from repro.reduce.engine import run_reduction

            return run_reduction(
                self.plane,
                self.kernel,
                self.descriptor.op,
                values,
                values2,
                radix=self.radix,
                mode=mode if mode is not None else self.mode,
                workers=self.workers,
                block_items=self.block_items,
            )
        return run_plane(
            self.plane,
            self.kernel,
            values,
            radix=self.radix,
            mode=mode if mode is not None else self.mode,
            workers=self.workers,
            block_items=self.block_items,
        )


def plan_sum(
    descriptor: DataDescriptor,
    *,
    kernel: Optional[str] = None,
    mode: str = "nearest",
    radix: RadixConfig = DEFAULT_RADIX,
    block_items: int = DEFAULT_BLOCK_ITEMS,
) -> SumPlan:
    """Choose a plane, kernel and tier for a summation task.

    Heuristics (each encoded in the returned plan's ``reason``):

    * small in-memory inputs stay serial — worker spin-up costs more
      than folding the data in place;
    * multi-worker requests go to the MapReduce plane when the host has
      the cores (the driver itself falls back to its simulated executor
      otherwise);
    * file-backed data with one worker streams: one pass over the
      mapped dataset, O(1) memory;
    * the kernel is the fastest *available* candidate from
      :func:`kernel_candidates` — the condition-adaptive cascade for
      nearest rounding (certified fast paths, exact escalation), the
      binned exponent fold for directed modes (which the certifying
      tiers cannot prove); optional backends like ``binned_jit`` are
      selected only when their capability is installed, never by
      assumption.
    """
    from repro.reduce.ops import get_op, kernel_supports

    op = descriptor.op
    reduction = get_op(op)
    candidates = kernel_candidates(mode=mode, radix=radix, op=op)
    if kernel is None:
        kernel = next(c.name for c in candidates if c.accepted)
    elif kernel not in kernel_names():
        if kernel in OPTIONAL_KERNEL_REQUIREMENTS:
            capability = OPTIONAL_KERNEL_REQUIREMENTS[kernel]
            raise ValueError(
                f"kernel {kernel!r} requires {capability}, which is not "
                f"installed; install the [native] extra or pick one of "
                f"{list(kernel_names())}"
            )
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {list(kernel_names())}"
        )
    k = get_kernel(kernel, radix=radix)
    if not kernel_supports(reduction, k):
        raise ValueError(
            f"kernel {kernel!r} cannot host op {op!r}: the op finishes "
            f"from the exact fraction, which a speculative kernel does "
            f"not keep"
        )
    tier = "speculative" if (not k.exact and mode == "nearest") else "exact"
    if not k.exact and mode != "nearest":
        # Directed rounding cannot ride a certificate; the plan runs
        # the kernel's exact variant implicitly (every plane swaps it
        # in), so report the truth.
        tier = "exact"

    n = descriptor.n
    workers = descriptor.workers
    cpus = os.cpu_count() or 1

    if descriptor.layout == "file":
        if workers > 1:
            plane = "mapreduce"
            reason = (
                f"file dataset (n={n:,}) with {workers} workers: map the "
                f"file and fan blocks out to the MapReduce plane"
            )
        else:
            plane = "streaming"
            reason = (
                f"file dataset (n={n:,}), single worker: one streaming "
                f"pass over the mapped data, O(1) memory"
            )
    elif workers > 1 and n >= 2 * block_items:
        plane = "mapreduce"
        exec_note = "process pool" if cpus >= workers else "simulated cluster"
        reason = (
            f"in-memory n={n:,} across {workers} workers ({exec_note}): "
            f"block folds dominate scheduling at this size"
        )
    elif workers > 1:
        plane = "serial"
        workers = 1
        reason = (
            f"in-memory n={n:,} is below {2 * block_items:,} items: "
            f"worker spin-up would cost more than the fold; running serially"
        )
    else:
        plane = "serial"
        reason = f"in-memory n={n:,}, single worker: fold in place"

    return SumPlan(
        plane=plane,
        kernel=kernel,
        tier=tier,
        workers=workers,
        block_items=block_items,
        reason=reason,
        descriptor=descriptor,
        mode=mode,
        radix=radix,
        candidates=candidates,
    )
