"""repro — parallel algorithms for exactly summing floating-point numbers.

A from-scratch reproduction of Goodrich & Eldawy, *Parallel Algorithms
for Summing Floating-Point Numbers* (SPAA 2016): the carry-free sparse
superaccumulator representation, PRAM / external-memory / MapReduce
summation algorithms, the sequential baselines the paper compares
against, and the data generators and harnesses that regenerate its
experimental figures.

Quick start::

    import numpy as np
    from repro import exact_sum

    x = np.array([1e16, 1.0, -1e16])
    assert exact_sum(x) == 1.0          # float(np.sum(x)) would be 0.0

Every execution plane (serial, streaming, serving, MapReduce, external
memory, BSP, PRAM) consumes the same kernel protocol::

    from repro.kernels import get_kernel, kernel_sum
    from repro.plan import DataDescriptor, plan_sum

    total = kernel_sum(get_kernel("adaptive"), [x])   # fold/combine/round
    plan = plan_sum(DataDescriptor.describe_array(x)) # plane x kernel x tier
    assert plan.execute() == total == 1.0
"""

from repro.core import (
    DEFAULT_RADIX,
    RadixConfig,
    SparseSuperaccumulator,
    DenseSuperaccumulator,
    SmallSuperaccumulator,
    TruncatedSparseSuperaccumulator,
    condition_number,
    exact_dot,
    exact_sum,
    exact_sum_fraction,
    exact_sum_scaled,
    two_sum,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_RADIX",
    "RadixConfig",
    "SparseSuperaccumulator",
    "DenseSuperaccumulator",
    "SmallSuperaccumulator",
    "TruncatedSparseSuperaccumulator",
    "condition_number",
    "exact_dot",
    "exact_sum",
    "exact_sum_fraction",
    "exact_sum_scaled",
    "two_sum",
    "__version__",
]
