"""Write-ahead log of ingest frames: durability before application.

Every ingest batch a cluster node accepts is first appended to its WAL
as a ``WALR`` codec frame (length-prefixed header + CRC-32 over the
body), then folded into shard state. Replaying the file therefore
reconstructs shard state bit-identically: superaccumulator folds are
exact and merge-order-independent, so "same records" implies "same
rounded value" — no matter how the records were interleaved across
shards before the crash or will be after replay.

Tail semantics follow the classic WAL contract:

* a *torn tail* — the file ends mid-record because the process died
  inside a write — is expected and tolerated: replay stops at the last
  complete record and reports ``truncated=True``;
* corruption *before* the tail (CRC mismatch, bad magic, nonsense
  lengths with more bytes following) is not a crash artifact and
  raises :class:`~repro.errors.CodecError`.

:class:`WalWriter` is the async façade used by the node service: an
owner task drains a queue of encoded records, writes them in one
group-commit batch via ``asyncio.to_thread`` (the CC004 discipline —
the event loop never touches the file), fsyncs, then resolves the
waiters. Batching amortizes the fsync, which is the entire cost of a
WAL at cluster scale.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from repro import codec
from repro.errors import ServiceError

__all__ = ["WalRecord", "WriteAheadLog", "WalWriter", "read_wal", "iter_wal"]


@dataclass(frozen=True)
class WalRecord:
    """One durably logged ingest batch.

    Attributes:
        seq: cluster per-stream sequence number, or
            :data:`repro.codec.WAL_UNSEQUENCED` for scatter-mode
            records that carry no dedup identity.
        stream: target stream name.
        values: the float64 batch, exactly as ingested. For reduction
            records these are the *pre-expansion* inputs — replay
            re-runs the deterministic EFT expansion, so the recovered
            term multiset is bit-identical to the original ingest.
        op: ``"sum"`` for plain ``WALR`` ingest records, or a reduction
            kind (``"pairs"``/``"squares"``/``"observations"``) for
            op-tagged ``WALO`` records.
        values2: the second input array of a ``"pairs"`` record, else
            ``None``.
    """

    seq: int
    stream: str
    values: np.ndarray
    op: str = "sum"
    values2: Optional[np.ndarray] = None

    @property
    def sequenced(self) -> bool:
        return self.seq != codec.WAL_UNSEQUENCED


def iter_wal(path: Union[str, Path]) -> Iterator[Union[WalRecord, bool]]:
    """Yield every complete record, then one ``bool``: tail-torn flag.

    The trailing flag (always the final yield) is ``True`` when the
    file ended mid-record — the signature of a crash during append.

    Raises:
        CodecError: corruption before the tail (CRC/magic/lengths).
        OSError: unreadable file.
    """
    with open(Path(path), "rb") as fh:
        while True:
            header = fh.read(codec.WAL_HEADER_SIZE)
            if not header:
                yield False
                return
            if len(header) < codec.WAL_HEADER_SIZE:
                yield True
                return
            total = codec.wal_record_size(header)
            body = fh.read(total - codec.WAL_HEADER_SIZE)
            if len(body) < total - codec.WAL_HEADER_SIZE:
                yield True
                return
            seq, stream, op, values, values2 = codec.decode_wal_any(header + body)
            yield WalRecord(
                seq=seq, stream=stream, values=values, op=op, values2=values2
            )


def read_wal(path: Union[str, Path]) -> Tuple[List[WalRecord], bool]:
    """All complete records plus the torn-tail flag; ``([], False)``
    for a missing file (a node that never ingested has no WAL)."""
    if not Path(path).exists():
        return [], False
    records: List[WalRecord] = []
    truncated = False
    for item in iter_wal(path):
        if isinstance(item, bool):
            truncated = item
        else:
            records.append(item)
    return records, truncated


class WriteAheadLog:
    """Synchronous append-only WAL file (the writer task's core).

    All methods block; the async service reaches them only through
    :class:`WalWriter`'s ``asyncio.to_thread`` hop. Useful directly in
    synchronous tools (benchmarks, forensics, tests).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def append(
        self, seq: int, stream: str, values: Union[np.ndarray, bytes]
    ) -> int:
        """Encode, append, fsync one record; returns bytes written.

        ``values`` may be raw little-endian float64 bytes (a binary-wire
        frame body): the codec logs them verbatim, so the durability
        path never re-encodes what the network delivered.
        """
        blob = codec.encode_wal_record(seq, stream, values)
        self.append_blob(blob)
        return len(blob)

    def append_reduce(
        self,
        seq: int,
        stream: str,
        op: str,
        x: Union[np.ndarray, bytes],
        y: Optional[Union[np.ndarray, bytes]] = None,
    ) -> int:
        """Append one op-tagged ``WALO`` reduction record; returns bytes.

        The record carries the *raw pre-expansion* inputs (half the
        volume of logging expanded terms); replay re-expands
        deterministically. ``y`` is required for ``"pairs"`` and
        rejected otherwise — see :func:`repro.codec.encode_wal_reduce`.
        """
        blob = codec.encode_wal_reduce(seq, stream, op, x, y)
        self.append_blob(blob)
        return len(blob)

    def append_blob(self, blob: bytes) -> None:
        """Append pre-encoded record bytes and fsync (group commit)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())

    def replay(self) -> Tuple[List[WalRecord], bool]:
        """(records, truncated) — see :func:`read_wal`."""
        return read_wal(self.path)

    def size(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0


class WalWriter:
    """Async group-commit writer around :class:`WriteAheadLog`.

    ``append`` resolves only after the record is on disk (fsync'd), so
    a node acks an ingest only once replay is guaranteed to recover it.
    Concurrent appends that arrive while a batch is being synced are
    coalesced into the next batch — one fsync covers them all.
    """

    _STOP = object()

    def __init__(self, path: Union[str, Path], *, max_batch: int = 256) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.log = WriteAheadLog(path)
        self._max_batch = max_batch
        self._queue: Optional[asyncio.Queue] = None
        self._task: Optional["asyncio.Task[None]"] = None
        self.records_written = 0
        self.batches_written = 0

    @property
    def path(self) -> Path:
        return self.log.path

    def start(self) -> None:
        if self._task is not None:
            return
        self._queue = asyncio.Queue()
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is None or self._queue is None:
            return
        await self._queue.put(self._STOP)
        await self._task
        self._task = None
        self._queue = None

    async def append(
        self, seq: int, stream: str, values: Union[np.ndarray, bytes]
    ) -> None:
        """Durably log one record; resolves after fsync.

        Raw float64 bytes are accepted and logged verbatim (the
        binary-wire passthrough) — see :meth:`WriteAheadLog.append`.
        """
        await self._enqueue(codec.encode_wal_record(seq, stream, values))

    async def append_reduce(
        self,
        seq: int,
        stream: str,
        op: str,
        x: Union[np.ndarray, bytes],
        y: Optional[Union[np.ndarray, bytes]] = None,
    ) -> None:
        """Durably log one op-tagged reduction record; resolves after fsync.

        Logs the raw pre-expansion inputs verbatim (binary-wire frame
        bodies pass through untouched) — see
        :meth:`WriteAheadLog.append_reduce`.
        """
        await self._enqueue(codec.encode_wal_reduce(seq, stream, op, x, y))

    async def _enqueue(self, blob: bytes) -> None:
        if self._queue is None:
            raise RuntimeError("WalWriter is not started")
        done: "asyncio.Future[None]" = asyncio.get_running_loop().create_future()
        await self._queue.put((blob, done))
        await done

    async def _run(self) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            if item is self._STOP:
                return
            batch = [item]
            while len(batch) < self._max_batch:
                try:
                    extra = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is self._STOP:
                    # Flush what we have, then honor the stop.
                    await self._commit(batch)
                    return
                batch.append(extra)
            await self._commit(batch)

    async def _commit(self, batch: List[Tuple[bytes, "asyncio.Future[None]"]]) -> None:
        blob = b"".join(item[0] for item in batch)
        try:
            await asyncio.to_thread(self.log.append_blob, blob)
        except OSError as exc:
            err = ServiceError(f"WAL append failed: {exc}")
            err.code = "wal-io"
            for _, done in batch:
                if not done.done():
                    done.set_exception(err)
            return
        self.records_written += len(batch)
        self.batches_written += 1
        for _, done in batch:
            if not done.done():
                done.set_result(None)
