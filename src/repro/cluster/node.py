"""A cluster node: a :class:`ReproService` with a WAL and dedup state.

:class:`WalService` extends the serve plane's service with the two
things a cluster member needs:

* **durability** — every accepted ingest is appended to the node's
  write-ahead log *before* it is folded, so a crash loses nothing that
  was acknowledged; :meth:`recover` replays the log into shard state,
  bit-identically, because exact folds commute;
* **idempotency** — sequenced requests (the coordinator stamps each
  replicated batch with a per-stream ``seq``) are applied at most
  once. A retry after failover, or a WAL replay of records the node
  already holds, is acknowledged as a duplicate without re-folding.
  This turns at-least-once delivery into exactly-once arithmetic.

Unsequenced ingest (plain serve traffic, scatter-mode striping) is
still WAL-logged for crash recovery of the node itself; it simply has
no cross-node dedup identity.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro import codec
from repro.errors import ServiceError
from repro.serve.protocol import WIRE_BINARY
from repro.serve.service import ReproService, ServeConfig, _require_stream
from repro.cluster.wal import WalWriter, read_wal
from repro.util.validation import ensure_float64_array

__all__ = ["WalService", "ClusterNode"]


def _seq_of(request: Dict[str, Any]) -> Optional[int]:
    """Validated optional ``seq`` field (None = unsequenced)."""
    seq = request.get("seq")
    if seq is None:
        return None
    if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
        raise ServiceError("'seq' must be a non-negative integer")
    return seq


class WalService(ReproService):
    """Serve-plane service with write-ahead logging and seq dedup."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        radix: RadixConfig = DEFAULT_RADIX,
        wal_path: Optional[Union[str, "Any"]] = None,
    ) -> None:
        super().__init__(config, radix=radix)
        self._wal: Optional[WalWriter] = (
            WalWriter(wal_path) if wal_path is not None else None
        )
        #: per-stream high-water mark of applied sequence numbers
        self._applied: Dict[str, int] = {}
        self._ops["cluster_info"] = self._op_cluster_info

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        if self._wal is not None:
            self._wal.start()

    async def close(self) -> None:
        # Flush the WAL first: everything acknowledged must be on disk
        # before the shard writers stop.
        if self._wal is not None:
            await self._wal.stop()
        await super().close()

    async def recover(self) -> Dict[str, Any]:
        """Replay this node's WAL into shard state (call after start).

        Bit-identity is free: the same records fold to the same exact
        state whatever the shard routing, so recovery does not need to
        reproduce the pre-crash scatter pattern.
        """
        if self._wal is None:
            return {"records": 0, "truncated": False}
        records, truncated = await asyncio.to_thread(read_wal, self._wal.path)
        applied = 0
        # Stage high-water marks locally and publish them after the
        # replay loop: claiming `self._applied[stream]` before the fold
        # awaits (the old shape, flagged by CC101) let concurrent
        # sequenced ingest observe a claimed-but-unfolded seq — and a
        # fold that raised mid-replay would have permanently poisoned
        # the dedup table against retrying the same record.
        marks: Dict[str, int] = {}
        for rec in records:
            if rec.sequenced:
                seen = max(
                    marks.get(rec.stream, -1),
                    self._applied.get(rec.stream, -1),
                )
                if rec.seq <= seen:
                    continue
            if rec.op == "sum":
                await self._scatter(rec.stream, np.array(rec.values))
            else:
                # Op-tagged WALO record: the log holds the raw
                # pre-expansion inputs; re-run the deterministic EFT
                # expansion to recover the identical term multiset.
                await self._apply_reduce(
                    rec.stream,
                    rec.op,
                    np.array(rec.values),
                    None if rec.values2 is None else np.array(rec.values2),
                )
            if rec.sequenced:
                marks[rec.stream] = rec.seq
            applied += 1
        # Single publish step, no awaits in between: every seq becomes
        # visible only with its fold already applied.
        for stream, seq in marks.items():
            self._applied[stream] = max(seq, self._applied.get(stream, -1))
        return {"records": applied, "truncated": truncated}

    # ------------------------------------------------------------------
    # WAL-fronted ingest
    # ------------------------------------------------------------------

    async def _ingest(
        self,
        stream: str,
        seq: Optional[int],
        arr: np.ndarray,
        payload: Optional[bytes] = None,
    ) -> Dict[str, Any]:
        if arr.size == 0:
            return {"added": 0}
        if seq is not None:
            if seq <= self._applied.get(stream, -1):
                # Already applied (retry after failover, or replay of
                # records this member holds): ack without re-folding.
                return {"added": 0, "duplicate": True, "seq": seq}
            # Claim the seq before the first await so a concurrent
            # duplicate cannot interleave past the check. If the WAL
            # append then fails, the node is considered failed — the
            # coordinator's failover path owns the cleanup.
            self._applied[stream] = seq
        if self._wal is not None:
            # Binary-wire ingest hands the frame's float64 body bytes
            # through untouched (WAL passthrough: the durable record's
            # value bytes ARE the wire bytes); JSON ingest logs the
            # parsed array, which the codec serializes to the identical
            # little-endian layout.
            await self._wal.append(
                seq if seq is not None else codec.WAL_UNSEQUENCED,
                stream,
                payload if payload is not None else arr,
            )
        added = await self._scatter(stream, arr)
        response: Dict[str, Any] = {"added": added}
        if seq is not None:
            response["seq"] = seq
        return response

    async def _op_add(self, request: Dict[str, Any]) -> Dict[str, Any]:
        stream = _require_stream(request)
        value = request.get("value")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServiceError("'value' must be a number")
        arr = self._validated_array([float(value)])
        return await self._ingest(stream, _seq_of(request), arr)

    async def _op_add_array(self, request: Dict[str, Any]) -> Dict[str, Any]:
        stream = _require_stream(request)
        if "values" not in request:
            raise ServiceError("add_array needs a 'values' field")
        values = request.get("values")
        payload: Optional[bytes] = None
        if request.get("wire") == WIRE_BINARY and isinstance(values, np.ndarray):
            # Validated by the protocol layer's BBAT parser; keep the
            # zero-copy view and the raw frame body for WAL passthrough.
            arr = ensure_float64_array(values)
            raw = request.get("payload_f64")
            if isinstance(raw, (bytes, bytearray, memoryview)):
                payload = bytes(raw)
        else:
            arr = self._validated_array(values)
        return await self._ingest(stream, _seq_of(request), arr, payload=payload)

    async def _ingest_reduce(
        self,
        stream: str,
        op_kind: str,
        x: np.ndarray,
        y: Optional[np.ndarray],
        request: Dict[str, Any],
    ) -> Dict[str, Any]:
        """WAL-fronted reduction ingest: dedup, log raw inputs, expand.

        The durable record carries the *pre-expansion* inputs (binary
        ``RBAT`` frame bodies pass through verbatim); replay re-expands
        deterministically, so recovery reconstructs the identical term
        multiset at half the log volume.
        """
        if x.size == 0:
            return {"added": 0}
        # Police the expansion domain before anything durable happens:
        # a rejected batch must never enter the WAL, or replay would
        # refuse the whole log.
        self._reduce_op_for(op_kind).check_domain(x, y)
        seq = _seq_of(request)
        if seq is not None:
            if seq <= self._applied.get(stream, -1):
                return {"added": 0, "duplicate": True, "seq": seq}
            # Claim before the first await, exactly like _ingest.
            self._applied[stream] = seq
        if self._wal is not None:
            payload_x = request.get("payload_f64")
            payload_y = request.get("payload_f64_y")
            use_raw = isinstance(payload_x, (bytes, bytearray, memoryview)) and (
                y is None or isinstance(payload_y, (bytes, bytearray, memoryview))
            )
            await self._wal.append_reduce(
                seq if seq is not None else codec.WAL_UNSEQUENCED,
                stream,
                op_kind,
                bytes(payload_x) if use_raw else x,
                (bytes(payload_y) if use_raw else y) if y is not None else None,
            )
        added = await self._apply_reduce(stream, op_kind, x, y)
        response: Dict[str, Any] = {"added": added}
        if seq is not None:
            response["seq"] = seq
        return response

    async def _op_add_block(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # A zero-copy block fold would bypass the WAL: the descriptor's
        # segment may be gone by replay time. Refuse loudly rather than
        # silently break the durability contract.
        raise ServiceError(
            "add_block is not supported on WAL-backed cluster nodes; "
            "use add_array"
        )

    async def _op_restore(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Parent restore, plus an optional ``seq`` high-water mark.

        Failover healing feeds a replica a snapshot that already
        contains folds up to some sequence number; recording that mark
        makes the subsequent retry/replay dedup-correct instead of
        double-applying the healed prefix.
        """
        response = await super()._op_restore(request)
        seq = _seq_of(request)
        if seq is not None:
            stream = _require_stream(request)
            self._applied[stream] = max(self._applied.get(stream, -1), seq)
            response["seq"] = self._applied[stream]
        return response

    async def _op_cluster_info(self, request: Dict[str, Any]) -> Dict[str, Any]:
        info: Dict[str, Any] = {
            "applied": dict(sorted(self._applied.items())),
            "wal": None,
        }
        if self._wal is not None:
            info["wal"] = {
                "path": str(self._wal.path),
                "records_written": self._wal.records_written,
                "batches_written": self._wal.batches_written,
            }
        return info


class ClusterNode:
    """One in-process cluster member: id + WAL-backed service."""

    def __init__(
        self,
        node_id: str,
        *,
        config: Optional[ServeConfig] = None,
        radix: RadixConfig = DEFAULT_RADIX,
        wal_path: Optional[Union[str, "Any"]] = None,
    ) -> None:
        if not node_id:
            raise ValueError("node_id must be a non-empty string")
        self.node_id = node_id
        self.service = WalService(config, radix=radix, wal_path=wal_path)

    @property
    def wal_path(self) -> Optional[str]:
        return str(self.service._wal.path) if self.service._wal else None

    async def start(self, *, recover: bool = True) -> Dict[str, Any]:
        await self.service.start()
        if recover:
            return await self.service.recover()
        return {"records": 0, "truncated": False}

    async def close(self) -> None:
        await self.service.close()

    async def __aenter__(self) -> "ClusterNode":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()
