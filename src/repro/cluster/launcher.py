"""Process-level cluster management: spawn, watch, kill real nodes.

Each node is a separate ``python -m repro cluster node`` process — a
:class:`~repro.cluster.node.WalService` behind a TCP
:class:`~repro.serve.server.ReproServer`, with its own WAL file. On
startup a node replays its WAL (crash recovery), binds an ephemeral
port, and prints one JSON "ready line" on stdout; the launcher parses
it to learn the port. A cluster's membership is persisted as a spec
file (``cluster.json``) so separate CLI invocations — ``spawn``,
``status``, ``kill-node`` — and the benchmark all agree on who is in
the cluster.

SIGKILL is used deliberately for ``kill``: the point of the WAL is
that an *abrupt* death (no flush, no goodbye) loses nothing that was
acknowledged, so the test/benchmark kill path must not be gentle.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "NodeSpec",
    "NodeProcess",
    "spawn_local_cluster",
    "save_spec",
    "load_spec",
    "serve_node",
]

#: File name of the cluster membership spec inside a cluster directory.
SPEC_NAME = "cluster.json"


@dataclass
class NodeSpec:
    """One row of the persisted cluster membership."""

    node_id: str
    host: str
    port: int
    wal: str
    pid: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "node_id": self.node_id,
            "host": self.host,
            "port": self.port,
            "wal": self.wal,
            "pid": self.pid,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "NodeSpec":
        return cls(
            node_id=str(doc["node_id"]),
            host=str(doc["host"]),
            port=int(doc["port"]),
            wal=str(doc["wal"]),
            pid=doc.get("pid"),
        )


def save_spec(directory: Union[str, Path], specs: List[NodeSpec], **extra: Any) -> Path:
    path = Path(directory) / SPEC_NAME
    doc = {"format": "repro-cluster-spec-v1", "nodes": [s.to_json() for s in specs]}
    doc.update(extra)
    path.write_text(json.dumps(doc, indent=2))
    return path


def load_spec(directory: Union[str, Path]) -> List[NodeSpec]:
    path = Path(directory) / SPEC_NAME
    doc = json.loads(path.read_text())
    if doc.get("format") != "repro-cluster-spec-v1":
        raise ValueError(f"unrecognized cluster spec format in {path}")
    return [NodeSpec.from_json(row) for row in doc["nodes"]]


class NodeProcess:
    """A spawned node process plus its parsed ready line."""

    def __init__(
        self,
        node_id: str,
        wal: Path,
        *,
        host: str = "127.0.0.1",
        shards: int = 2,
        kernel: str = "running",
        ready_timeout: float = 30.0,
    ) -> None:
        self.node_id = node_id
        self.wal = Path(wal)
        self.host = host
        self.shards = shards
        self.kernel = kernel
        self.ready_timeout = ready_timeout
        self.port: Optional[int] = None
        self.proc: Optional[subprocess.Popen] = None

    def start(self) -> NodeSpec:
        """Spawn the process and wait for its ready line."""
        if self.proc is not None and self.proc.poll() is None:
            raise RuntimeError(f"node {self.node_id!r} is already running")
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (str(src), env.get("PYTHONPATH")) if p
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "cluster", "node",
                "--id", self.node_id,
                "--host", self.host,
                "--port", "0",
                "--wal", str(self.wal),
                "--shards", str(self.shards),
                "--kernel", self.kernel,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            env=env,
            text=True,
        )
        assert self.proc.stdout is not None
        deadline = time.monotonic() + self.ready_timeout
        line = ""
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if line:
                break
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"node {self.node_id!r} exited (rc={self.proc.returncode}) "
                    f"before becoming ready"
                )
        try:
            ready = json.loads(line)
            self.port = int(ready["port"])
        except (ValueError, KeyError, TypeError) as exc:
            self.kill()
            raise RuntimeError(
                f"node {self.node_id!r} printed no valid ready line "
                f"(got {line!r})"
            ) from exc
        return self.spec()

    def spec(self) -> NodeSpec:
        if self.port is None or self.proc is None:
            raise RuntimeError(f"node {self.node_id!r} is not started")
        return NodeSpec(
            node_id=self.node_id,
            host=self.host,
            port=self.port,
            wal=str(self.wal),
            pid=self.proc.pid,
        )

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def kill(self) -> None:
        """SIGKILL — abrupt death, the crash the WAL exists to survive."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)

    def terminate(self) -> None:
        """Polite stop (SIGTERM) for teardown paths."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.kill()

    def restart(self) -> NodeSpec:
        """Start a fresh process on the same WAL (recovery included)."""
        self.kill()
        self.port = None
        return self.start()


def spawn_local_cluster(
    n: int,
    directory: Union[str, Path],
    *,
    shards: int = 2,
    kernel: str = "running",
    replication: int = 2,
) -> List[NodeProcess]:
    """Spawn ``n`` node processes with WALs under ``directory`` and
    persist the membership spec there."""
    if n < 1:
        raise ValueError("cluster size must be >= 1")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    procs: List[NodeProcess] = []
    try:
        for i in range(n):
            node = NodeProcess(
                f"node-{i}",
                directory / f"node-{i}.wal",
                shards=shards,
                kernel=kernel,
            )
            node.start()
            procs.append(node)
    except Exception:
        for node in procs:
            node.kill()
        raise
    save_spec(
        directory,
        [p.spec() for p in procs],
        kernel=kernel,
        replication=replication,
    )
    return procs


def serve_node(
    node_id: str,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    wal: Optional[str] = None,
    shards: int = 2,
    kernel: str = "running",
) -> int:
    """Blocking entry point of one node process (``repro cluster node``).

    Replays the WAL, binds, prints the JSON ready line, serves until
    SIGTERM/SIGINT. Returns the process exit code.
    """
    import asyncio

    from repro.serve.server import ReproServer
    from repro.serve.service import ServeConfig
    from repro.cluster.node import WalService

    async def run() -> int:
        service = WalService(
            ServeConfig(shards=shards, kernel=kernel), wal_path=wal
        )
        await service.start()
        server = ReproServer(service, host=host, port=port)
        async with server:
            recovery = await service.recover()
            print(
                json.dumps(
                    {
                        "node": node_id,
                        "host": server.host,
                        "port": server.port,
                        "wal": wal,
                        "recovered_records": recovery["records"],
                        "wal_tail_torn": recovery["truncated"],
                    }
                ),
                flush=True,
            )
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, server.request_stop)
            try:
                await server.serve_forever()
            finally:
                await service.close()
        return 0

    return asyncio.run(run())
