"""Primary/replica stream placement and per-stream sequencing.

A *placed* stream lives on a replication group: the first node the
ring yields is the primary, the next ``replication - 1`` distinct
nodes are replicas. Every member applies the **same** sequenced WAL
frames — not a diverging copy — so any member's state is bit-identical
to any other's, and a read can be served by whichever member is alive.
This is the luxury the exact representation buys: replicas need no
anti-entropy protocol because identical inputs give identical bits.

Sequence numbers are allocated here, per stream, monotonically. They
ride inside the ``WALR`` frame and the ``add_array`` request, giving
nodes an idempotency key: a retried or replayed frame whose ``seq`` is
at or below a node's high-water mark is acknowledged without being
re-applied. That turns the coordinator's at-least-once delivery (retry
after failover, WAL replay onto survivors) into exactly-once folds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster.placement import HashRing

__all__ = ["StreamPlacement", "ReplicationManager"]


@dataclass(frozen=True)
class StreamPlacement:
    """Where one stream lives, at one ring epoch.

    Attributes:
        stream: stream name.
        epoch: ring version the placement was computed at; stale
            placements (epoch < ring.version) must be recomputed.
        primary: first choice for writes and reads.
        replicas: remaining group members, in ring order.
    """

    stream: str
    epoch: int
    primary: str
    replicas: Tuple[str, ...]

    @property
    def members(self) -> Tuple[str, ...]:
        return (self.primary,) + self.replicas


class ReplicationManager:
    """Placement + sequencing bookkeeping for one coordinator."""

    def __init__(self, ring: HashRing, *, replication: int = 2) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.ring = ring
        self.replication = replication
        self._seqs: Dict[str, int] = {}

    def placement_for(self, stream: str) -> StreamPlacement:
        """Current-epoch placement for ``stream``."""
        members = self.ring.placement(stream, self.replication)
        return StreamPlacement(
            stream=stream,
            epoch=self.ring.version,
            primary=members[0],
            replicas=members[1:],
        )

    def next_seq(self, stream: str) -> int:
        """Allocate the next per-stream sequence number (0-based)."""
        seq = self._seqs.get(stream, -1) + 1
        self._seqs[stream] = seq
        return seq

    def last_seq(self, stream: str) -> int:
        """Highest allocated seq for ``stream`` (-1 if none)."""
        return self._seqs.get(stream, -1)

    def mark_down(self, node: str) -> int:
        """Remove a failed node from the ring; returns the new epoch."""
        self.ring.remove(node)
        return self.ring.version
