"""Distributed exact summation: WAL replay, replication, failover.

The cluster plane promotes the single-process serving plane to N
node processes. Its entire correctness story rides one property the
rest of the repo already proves: exact partial sums merge
associatively, commutatively and bit-identically. Consequences:

* **WAL replay is exact recovery** — re-folding a node's logged
  ingest frames reconstructs its shard state bit-for-bit, whatever
  the original scatter order (:mod:`repro.cluster.wal`);
* **replicas are interchangeable** — members of a placement group
  apply the same sequenced frames, so any of them serves a read
  (:mod:`repro.cluster.replication`);
* **scatter/gather reads are exact** — per-node partials recombine
  through the kernel wire merge, same bits as a single node
  (:mod:`repro.cluster.coordinator`);
* **failover is arithmetic-free** — promotion and healing move
  snapshots and replay frames; no reconciliation logic can disagree
  about a sum (:meth:`.ClusterCoordinator.failover`).

See ``docs/CLUSTER.md`` for the placement ring, the ``WALR`` record
format, and the failover sequence.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    LocalCluster,
    LocalNodeHandle,
    NodeHandle,
    RemoteNodeHandle,
)
from repro.cluster.launcher import (
    NodeProcess,
    NodeSpec,
    load_spec,
    save_spec,
    spawn_local_cluster,
)
from repro.cluster.node import ClusterNode, WalService
from repro.cluster.placement import HashRing, stable_hash
from repro.cluster.replication import ReplicationManager, StreamPlacement
from repro.cluster.wal import WalRecord, WalWriter, WriteAheadLog, iter_wal, read_wal

__all__ = [
    "ClusterCoordinator",
    "LocalCluster",
    "NodeHandle",
    "LocalNodeHandle",
    "RemoteNodeHandle",
    "ClusterNode",
    "WalService",
    "HashRing",
    "stable_hash",
    "ReplicationManager",
    "StreamPlacement",
    "WalRecord",
    "WalWriter",
    "WriteAheadLog",
    "iter_wal",
    "read_wal",
    "NodeSpec",
    "NodeProcess",
    "spawn_local_cluster",
    "save_spec",
    "load_spec",
]
