"""The cluster coordinator: routing, scatter/gather reads, failover.

An asyncio router in front of N WAL-backed serve nodes. Two ingest
disciplines coexist, chosen per call:

* **placed** (:meth:`ClusterCoordinator.append`) — the stream's ring
  placement names a primary plus replicas; every member receives the
  same sequenced batch, so each holds the full stream and any one of
  them can serve a read. Sequence numbers make redelivery idempotent.
* **scatter** (:meth:`ClusterCoordinator.scatter`) — batches are
  striped round-robin across all live nodes for raw ingest bandwidth;
  a read (:meth:`gather_value`) fans out, pulls each node's kernel
  snapshot, and merges the partials through the kernel's
  ``stream_from_bytes``/``merge`` — the same ``KSTR``/``ERSM`` wire
  merge every other plane uses, so the recombination is bit-exact.

**Failover.** When a node dies (probe failure or a request-level
transport error) the coordinator removes it from the ring — bumping
the placement epoch — recomputes the placements of every stream the
dead node carried, and *heals* any node newly added to a group by
feeding it a snapshot from a surviving member, stamped with the
stream's sequence high-water mark so subsequent retries dedup
correctly. The acked prefix of the stream is never lost while one
group member survives; and even a whole-group loss is recoverable by
replaying a dead node's WAL file onto the new placement
(:meth:`replay_wal_onto`) — records the survivors already hold are
deduplicated by ``seq``, missing ones are applied. Exactness is what
makes all of this safe: any member's state after the same record set
is bit-identical, whatever the delivery order or interleaving.
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.errors import EmptyStreamError, NodeDownError, ServiceError
from repro.kernels import get_kernel
from repro.serve import InProcessClient, ReproServeClient, ServeConfig
from repro.serve.protocol import WIRE_BINARY, decode_bytes_field
from repro.serve.service import square_shadow
from repro.stats import round_fraction, sqrt_round_fraction
from repro.util.validation import ensure_float64_array
from repro.cluster.node import ClusterNode, WalService
from repro.cluster.placement import HashRing
from repro.cluster.replication import ReplicationManager, StreamPlacement
from repro.cluster.wal import read_wal

__all__ = [
    "NodeHandle",
    "LocalNodeHandle",
    "RemoteNodeHandle",
    "ClusterCoordinator",
    "LocalCluster",
]


class NodeHandle:
    """Coordinator-side proxy for one cluster node."""

    def __init__(self, node_id: str) -> None:
        if not node_id:
            raise ValueError("node_id must be a non-empty string")
        self.node_id = node_id
        self.alive = True

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """One ok-response; raises the response's typed error, or
        :class:`NodeDownError` when the node cannot be reached."""
        raise NotImplementedError

    async def add_batch(
        self,
        stream: str,
        values: np.ndarray,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Send one float64 batch; full add_array response dict.

        The base implementation boxes through the JSON ``add_array``
        op; transport-aware subclasses route the array as a single
        codec frame when the connection negotiated the binary wire.
        """
        fields: Dict[str, Any] = {
            "stream": stream,
            # reprolint: disable-next-line=ARCH005 -- JSON-lines fallback wire: boxing is the format
            "values": [float(v) for v in values],
        }
        if seq is not None:
            fields["seq"] = seq
        return await self.request("add_array", **fields)

    async def add_reduce_batch(
        self,
        stream: str,
        op: str,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Send one reduction ingest batch; full op response dict.

        ``op`` is the codec reduction kind (``"pairs"``/``"squares"``/
        ``"observations"``). The base implementation boxes through the
        JSON reduction ops; transport-aware subclasses ship a single
        codec ``RBAT`` frame on binary connections.
        """
        request_op = {
            "pairs": "add_pairs",
            "squares": "add_squares",
            "observations": "add_observations",
        }.get(op)
        if request_op is None:
            raise ValueError(f"unknown reduction op kind {op!r}")
        fields: Dict[str, Any] = {
            "stream": stream,
            # reprolint: disable-next-line=ARCH005 -- JSON-lines fallback wire: boxing is the format
            "values": [float(v) for v in x],
        }
        if y is not None:
            fields["values2"] = [float(v) for v in y]
        if seq is not None:
            fields["seq"] = seq
        return await self.request(request_op, **fields)

    async def close(self) -> None:
        return None

    def down(self, reason: str) -> NodeDownError:
        self.alive = False
        err = NodeDownError(f"node {self.node_id!r} is down: {reason}")
        err.node = self.node_id  # type: ignore[attr-defined]
        return err


class LocalNodeHandle(NodeHandle):
    """In-process node (a :class:`WalService` in this event loop).

    ``kill`` simulates abrupt node death: the handle starts refusing
    requests exactly like a dead TCP peer would, while the node's WAL
    file stays behind for replay — which is the only artifact a real
    crash leaves either.
    """

    def __init__(self, node_id: str, service: WalService) -> None:
        super().__init__(node_id)
        self.service = service
        self._client = InProcessClient(service, wire=WIRE_BINARY)

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        if not self.alive:
            raise self.down("killed")
        return await self._client.request(op, **fields)

    async def add_batch(
        self,
        stream: str,
        values: np.ndarray,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        if not self.alive:
            raise self.down("killed")
        return await self._client.request_batch(stream, values, seq=seq)

    async def add_reduce_batch(
        self,
        stream: str,
        op: str,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        if not self.alive:
            raise self.down("killed")
        return await self._client.request_reduce(stream, op, x, y, seq=seq)

    def kill(self) -> None:
        self.alive = False


class RemoteNodeHandle(NodeHandle):
    """TCP node (a ``repro cluster node`` process)."""

    def __init__(
        self,
        node_id: str,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        wire: str = WIRE_BINARY,
    ) -> None:
        super().__init__(node_id)
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.wire = wire
        self._client: Optional[ReproServeClient] = None

    async def _ensure_client(self) -> ReproServeClient:
        if self._client is None:
            # Binary wire preferred by default; connect() downgrades to
            # JSON-lines automatically against pre-v2 nodes, so mixed
            # fleets work. ``wire="json"`` pins the fallback wire
            # (benchmark baselines, protocol debugging).
            self._client = await asyncio.wait_for(
                ReproServeClient.connect(self.host, self.port, wire=self.wire),
                timeout=self.timeout,
            )
        return self._client

    async def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        if not self.alive:
            raise self.down("marked down")
        try:
            client = await self._ensure_client()
            return await asyncio.wait_for(
                client.request(op, **fields), timeout=self.timeout
            )
        except (ConnectionError, OSError, asyncio.TimeoutError, EOFError) as exc:
            await self._drop_client()
            raise self.down(f"{type(exc).__name__}: {exc}") from exc

    async def add_batch(
        self,
        stream: str,
        values: np.ndarray,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        if not self.alive:
            raise self.down("marked down")
        try:
            client = await self._ensure_client()
            return await asyncio.wait_for(
                client.request_batch(stream, values, seq=seq),
                timeout=self.timeout,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError, EOFError) as exc:
            await self._drop_client()
            raise self.down(f"{type(exc).__name__}: {exc}") from exc

    async def add_reduce_batch(
        self,
        stream: str,
        op: str,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        *,
        seq: Optional[int] = None,
    ) -> Dict[str, Any]:
        if not self.alive:
            raise self.down("marked down")
        try:
            client = await self._ensure_client()
            return await asyncio.wait_for(
                client.request_reduce(stream, op, x, y, seq=seq),
                timeout=self.timeout,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError, EOFError) as exc:
            await self._drop_client()
            raise self.down(f"{type(exc).__name__}: {exc}") from exc

    async def _drop_client(self) -> None:
        client, self._client = self._client, None
        if client is not None:
            try:
                await client.close()
            except (ConnectionError, OSError):
                pass

    async def close(self) -> None:
        await self._drop_client()


class ClusterCoordinator:
    """Scatter/gather router + replication + failover over N handles."""

    def __init__(
        self,
        handles: Sequence[NodeHandle],
        *,
        kernel: str = "running",
        radix: RadixConfig = DEFAULT_RADIX,
        replication: int = 2,
    ) -> None:
        if not handles:
            raise ValueError("a cluster needs at least one node")
        ids = [h.node_id for h in handles]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids: {ids}")
        self._handles: Dict[str, NodeHandle] = {h.node_id: h for h in handles}
        self.ring = HashRing(tuple(ids))
        self.replication = ReplicationManager(self.ring, replication=replication)
        self.radix = radix
        # Reads merge cross-node partials through the same exact kernel
        # the nodes fold with; exact_variant() mirrors the service.
        self.kernel_name = kernel
        self._kernel = get_kernel(kernel, radix=radix).exact_variant()
        #: placements of every placed stream seen, by name — the worklist
        #: a failover walks to re-establish replication factor
        self._placements: Dict[str, StreamPlacement] = {}
        self._rr = 0
        self.failovers = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def alive_handles(self) -> List[NodeHandle]:
        return [
            self._handles[node]
            for node in self.ring.nodes
            if self._handles[node].alive
        ]

    def _handle(self, node_id: str) -> NodeHandle:
        return self._handles[node_id]

    def _placement(self, stream: str) -> StreamPlacement:
        cached = self._placements.get(stream)
        if cached is None or cached.epoch != self.ring.version:
            if not len(self.ring):
                raise NodeDownError(
                    f"no live nodes remain to place stream {stream!r}"
                )
            cached = self.replication.placement_for(stream)
            self._placements[stream] = cached
        return cached

    async def ping_all(self) -> Dict[str, bool]:
        """Probe every handle (including ones marked down)."""

        async def probe(handle: NodeHandle) -> bool:
            try:
                await handle.request("ping")
                return True
            except (NodeDownError, ServiceError):
                return False

        handles = list(self._handles.values())
        results = await asyncio.gather(*(probe(h) for h in handles))
        return {h.node_id: ok for h, ok in zip(handles, results)}

    async def check_health(self) -> Dict[str, bool]:
        """Probe everyone and fail over any unresponsive ring member."""
        health = await self.ping_all()
        for node_id, ok in health.items():
            if not ok and node_id in self.ring:
                await self.failover(node_id)
        return health

    # ------------------------------------------------------------------
    # placed (replicated) streams
    # ------------------------------------------------------------------

    async def append(self, stream: str, values: Iterable[float]) -> Dict[str, Any]:
        """Replicated exactly-once ingest of one batch.

        The batch is stamped with the stream's next sequence number and
        sent to every placement member; the call acks when **all**
        members hold it durably. Members that die mid-send trigger
        failover and a retry against the recomputed placement — the
        ``seq`` dedups the members that already applied it.
        """
        arr = (
            ensure_float64_array(values)
            if isinstance(values, np.ndarray)
            else np.asarray(list(values), dtype=np.float64)
        )
        if arr.size == 0:
            return {"added": 0, "seq": None, "epoch": self.ring.version}
        seq = self.replication.next_seq(stream)
        for _ in range(len(self._handles) + 1):
            placement = self._placement(stream)
            sends = [
                self._handle(m).add_batch(stream, arr, seq=seq)
                for m in placement.members
            ]
            results = await asyncio.gather(*sends, return_exceptions=True)
            dead = [
                member
                for member, res in zip(placement.members, results)
                if isinstance(res, NodeDownError)
            ]
            hard = [
                res
                for res in results
                if isinstance(res, BaseException)
                and not isinstance(res, NodeDownError)
            ]
            if hard:
                raise hard[0]
            if not dead:
                return {
                    "added": int(arr.size),
                    "seq": seq,
                    "epoch": placement.epoch,
                    "members": list(placement.members),
                }
            for member in dead:
                await self.failover(member)
        raise NodeDownError(
            f"no placement for stream {stream!r} survived ingest retries"
        )

    async def value(self, stream: str, mode: str = "nearest") -> Dict[str, Any]:
        """Read a placed stream from the first live group member."""
        for _ in range(len(self._handles) + 1):
            placement = self._placement(stream)
            for member in placement.members:
                try:
                    response = await self._handle(member).request(
                        "value", stream=stream, mode=mode
                    )
                    response["node"] = member
                    response["epoch"] = placement.epoch
                    return response
                except NodeDownError:
                    await self.failover(member)
                    break  # placement changed; recompute
            else:
                raise NodeDownError(
                    f"every member of stream {stream!r} placement is down"
                )
        raise NodeDownError(f"read of stream {stream!r} exhausted retries")

    # ------------------------------------------------------------------
    # scatter (striped) streams
    # ------------------------------------------------------------------

    async def scatter(
        self,
        stream: str,
        values: Iterable[float],
        *,
        chunk: int = 8192,
    ) -> int:
        """Stripe a batch across all live nodes (partition-parallel).

        Scatter mode trades replication for bandwidth: each value lands
        on exactly one node, and reads recombine the per-node partials
        exactly (:meth:`gather_value`). Durability against the loss of
        a node comes from that node's WAL, not from copies.
        """
        arr = (
            ensure_float64_array(values)
            if isinstance(values, np.ndarray)
            else np.asarray(list(values), dtype=np.float64)
        )
        if arr.size == 0:
            return 0
        handles = self.alive_handles()
        if not handles:
            raise NodeDownError("no live nodes to scatter onto")
        # Contiguous array views, not boxed lists: each slice rides the
        # wire as one codec frame on binary connections.
        pieces = [arr[i : i + chunk] for i in range(0, arr.size, chunk)]
        sends = []
        for piece in pieces:
            handle = handles[self._rr % len(handles)]
            self._rr += 1
            sends.append(handle.add_batch(stream, piece))
        responses = await asyncio.gather(*sends)
        return sum(int(r["added"]) for r in responses)

    async def scatter_reduce(
        self,
        stream: str,
        op: str,
        x: Iterable[float],
        y: Optional[Iterable[float]] = None,
        *,
        chunk: int = 8192,
    ) -> int:
        """Stripe one reduction ingest batch across all live nodes.

        ``op`` is the codec reduction kind (``"pairs"`` needs ``y``;
        ``"squares"``/``"observations"`` reject it). Raw pre-expansion
        inputs ride the wire; each node expands its stripe with the
        same deterministic EFTs, so the union of per-node term
        multisets equals a serial whole-array expansion — which is what
        keeps :meth:`gather_value`/:meth:`gather_norm2`/
        :meth:`gather_moments` reads bit-identical to the serial
        references.
        """
        xa = (
            ensure_float64_array(x)
            if isinstance(x, np.ndarray)
            else np.asarray(list(x), dtype=np.float64)
        )
        ya: Optional[np.ndarray] = None
        if op == "pairs":
            if y is None:
                raise ValueError("scatter_reduce('pairs', ...) needs two arrays")
            ya = (
                ensure_float64_array(y)
                if isinstance(y, np.ndarray)
                else np.asarray(list(y), dtype=np.float64)
            )
            if xa.shape != ya.shape:
                raise ValueError("length mismatch")
        elif y is not None:
            raise ValueError(f"scatter_reduce({op!r}, ...) takes a single array")
        if xa.size == 0:
            return 0
        handles = self.alive_handles()
        if not handles:
            raise NodeDownError("no live nodes to scatter onto")
        sends = []
        for i in range(0, xa.size, chunk):
            handle = handles[self._rr % len(handles)]
            self._rr += 1
            sends.append(
                handle.add_reduce_batch(
                    stream,
                    op,
                    xa[i : i + chunk],
                    None if ya is None else ya[i : i + chunk],
                )
            )
        responses = await asyncio.gather(*sends)
        return sum(int(r["added"]) for r in responses)

    async def _merged_snapshot(
        self, stream: str, handles: Sequence[NodeHandle]
    ) -> Any:
        """Merge every given node's kernel snapshot of ``stream``."""
        snaps = await asyncio.gather(
            *(h.request("snapshot", stream=stream) for h in handles)
        )
        merged = self._kernel.new_stream()
        for snap in snaps:
            try:
                partial = self._kernel.stream_from_bytes(
                    decode_bytes_field(snap["snapshot"])
                )
            except ValueError as exc:
                raise ServiceError(f"corrupt node snapshot: {exc}") from exc
            merged.merge(partial)
        return merged

    async def gather_value(
        self, stream: str, mode: str = "nearest"
    ) -> Dict[str, Any]:
        """Exact scatter/gather read: merge every live node's partial.

        Each node returns its kernel-stream snapshot (``KSTR``/``ERSM``
        wire bytes); the coordinator decodes them with the kernel's
        ``stream_from_bytes`` and merges — cross-node recombination on
        the same exact-merge property every other plane relies on.
        """
        handles = self.alive_handles()
        if not handles:
            raise NodeDownError("no live nodes to gather from")
        merged = await self._merged_snapshot(stream, handles)
        result = merged.value(mode)
        return {
            "value": result,
            "hex": result.hex(),
            "count": merged.count,
            "nodes": len(handles),
        }

    async def gather_norm2(self, stream: str) -> Dict[str, Any]:
        """Exact Euclidean norm of a ``scatter_reduce("squares")`` stream.

        Merges the per-node TwoSquare-term partials, reads the exact
        sum-of-squares fraction, and rounds its square root once
        (nearest only). The norm of nothing is 0.0, never an error.
        """
        handles = self.alive_handles()
        if not handles:
            raise NodeDownError("no live nodes to gather from")
        merged = await self._merged_snapshot(stream, handles)
        if merged.count == 0:
            value = 0.0
        else:
            value = sqrt_round_fraction(merged.exact_fraction())
        return {
            "value": value,
            "hex": value.hex(),
            "count": merged.count,
            "nodes": len(handles),
        }

    async def gather_moments(
        self, stream: str, *, ddof: int = 0, mode: str = "nearest"
    ) -> Dict[str, Any]:
        """Exact mean/variance of a ``scatter_reduce("observations")`` stream.

        Merges the raw-value partials and the NUL-suffixed square-shadow
        partials, then finishes entirely in exact rational arithmetic —
        bit-identical to the serial ``mean``/``var`` ops.
        """
        if mode not in ("nearest", "down", "up", "zero"):
            raise ValueError(f"unknown rounding mode {mode!r}")
        if isinstance(ddof, bool) or not isinstance(ddof, int) or ddof < 0:
            raise ValueError("'ddof' must be a non-negative integer")
        handles = self.alive_handles()
        if not handles:
            raise NodeDownError("no live nodes to gather from")
        merged = await self._merged_snapshot(stream, handles)
        n = merged.count
        if n == 0:
            raise EmptyStreamError(f"moments of empty stream {stream!r}")
        if n - ddof <= 0:
            raise EmptyStreamError("need more observations than ddof")
        shadow = await self._merged_snapshot(square_shadow(stream), handles)
        if shadow.count != 2 * n:
            raise ServiceError(
                f"stream {stream!r} was not fed through observations scatter: "
                f"square shadow holds {shadow.count} terms, expected {2 * n}"
            )
        s = merged.exact_fraction()
        ss = shadow.exact_fraction()
        mean = round_fraction(s / n, mode)
        variance = round_fraction((ss - s * s / n) / (n - ddof), mode)
        return {
            "mean": mean,
            "variance": variance,
            "count": n,
            "ddof": ddof,
            "hex": mean.hex(),
            "nodes": len(handles),
        }

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    async def failover(self, node_id: str) -> Dict[str, Any]:
        """Remove a dead node, promote replicas, heal thinned groups.

        For every placed stream whose group contained the dead node:
        the ring (minus the dead node) yields a new placement — the
        surviving members keep their state, and any node *new* to the
        group is brought up to the stream's sequence high-water mark
        with a snapshot from a survivor before the group is considered
        healed.
        """
        handle = self._handles.get(node_id)
        if handle is not None:
            handle.alive = False
        if node_id not in self.ring:
            return {"node": node_id, "epoch": self.ring.version, "healed": []}
        affected = [
            p for p in self._placements.values() if node_id in p.members
        ]
        epoch = self.replication.mark_down(node_id)
        self.failovers += 1
        healed: List[str] = []
        for old in affected:
            new = self._placement(old.stream)  # recomputes at new epoch
            survivors = [
                m for m in old.members if m != node_id and self._handle(m).alive
            ]
            joiners = [m for m in new.members if m not in old.members]
            if not survivors:
                # Whole group lost: nothing to heal from — the stream
                # is recoverable only via replay_wal_onto.
                continue
            for joiner in joiners:
                await self._heal(old.stream, survivors[0], joiner)
                healed.append(f"{old.stream}->{joiner}")
        return {"node": node_id, "epoch": epoch, "healed": healed}

    async def _heal(self, stream: str, source: str, target: str) -> None:
        """Copy ``stream`` state source→target, stamped with its seq."""
        snap = await self._handle(source).request("snapshot", stream=stream)
        last = self.replication.last_seq(stream)
        fields: Dict[str, Any] = {
            "stream": stream,
            "snapshot": snap["snapshot"],
        }
        if last >= 0:
            fields["seq"] = last
        await self._handle(target).request("restore", **fields)

    async def replay_wal_onto(
        self,
        wal_path: Union[str, Path],
        *,
        include_unsequenced: bool = False,
    ) -> Dict[str, int]:
        """Replay a (dead) node's WAL through current placements.

        Sequenced records are re-sent with their original ``seq``:
        members that already hold them ack as duplicates, members that
        missed them apply them — after which every affected stream is
        whole again even if the dead node was the last holder of some
        suffix. Unsequenced (scatter) records carry no dedup identity,
        so they are only replayed on request — correct exactly when
        the scattered stream's other partials did not survive either.
        """
        records, truncated = await asyncio.to_thread(read_wal, wal_path)
        applied = 0
        duplicates = 0
        skipped = 0
        for rec in records:
            if not rec.sequenced and not include_unsequenced:
                skipped += 1
                continue
            placement = self._placement(rec.stream)
            members = (
                placement.members if rec.sequenced else
                [h.node_id for h in self.alive_handles()[:1]]
            )
            # The decoded record's float64 array re-enters the wire as a
            # codec frame whose body bytes match the WAL payload — the
            # replayed bits are the ingested bits. Op-tagged reduction
            # records re-enter through the matching reduce op, so the
            # receiving node re-runs the identical EFT expansion.
            if rec.op == "sum":
                sends = [
                    self._handle(m).add_batch(
                        rec.stream,
                        rec.values,
                        seq=rec.seq if rec.sequenced else None,
                    )
                    for m in members
                ]
            else:
                sends = [
                    self._handle(m).add_reduce_batch(
                        rec.stream,
                        rec.op,
                        rec.values,
                        rec.values2,
                        seq=rec.seq if rec.sequenced else None,
                    )
                    for m in members
                ]
            responses = await asyncio.gather(*sends)
            if any(r.get("duplicate") for r in responses):
                duplicates += 1
            else:
                applied += 1
        return {
            "records": len(records),
            "applied": applied,
            "duplicates": duplicates,
            "skipped": skipped,
            "truncated": int(truncated),
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    async def status(self) -> Dict[str, Any]:
        health = await self.ping_all()
        return {
            "epoch": self.ring.version,
            "nodes": {
                node_id: {
                    "alive": handle.alive,
                    "responding": health[node_id],
                    "on_ring": node_id in self.ring,
                }
                for node_id, handle in self._handles.items()
            },
            "replication": self.replication.replication,
            "kernel": self.kernel_name,
            "failovers": self.failovers,
            "placed_streams": {
                name: list(p.members) for name, p in sorted(self._placements.items())
            },
        }

    async def close(self) -> None:
        await asyncio.gather(*(h.close() for h in self._handles.values()))


class LocalCluster:
    """N in-process WAL-backed nodes + a coordinator, in one loop.

    The workhorse of tests, the selftest, the example and the
    ``cluster`` plane: real WALs on disk (a temp directory unless
    ``base_dir`` is given), real failover — no sockets.
    """

    def __init__(
        self,
        nodes: int = 3,
        *,
        kernel: str = "running",
        radix: RadixConfig = DEFAULT_RADIX,
        replication: int = 2,
        shards: int = 2,
        base_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if base_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            base_dir = self._tmp.name
        self.base_dir = Path(base_dir)
        self.nodes: Dict[str, ClusterNode] = {}
        handles: List[NodeHandle] = []
        for i in range(nodes):
            node_id = f"node-{i}"
            node = ClusterNode(
                node_id,
                config=ServeConfig(shards=shards, kernel=kernel),
                radix=radix,
                wal_path=self.base_dir / f"{node_id}.wal",
            )
            self.nodes[node_id] = node
            handles.append(LocalNodeHandle(node_id, node.service))
        self.coordinator = ClusterCoordinator(
            handles, kernel=kernel, radix=radix, replication=replication
        )

    def wal_path(self, node_id: str) -> Path:
        return self.base_dir / f"{node_id}.wal"

    def kill(self, node_id: str) -> None:
        """Simulate abrupt node death (handle refuses, WAL remains)."""
        handle = self.coordinator._handles[node_id]
        assert isinstance(handle, LocalNodeHandle)
        handle.kill()

    async def start(self) -> None:
        for node in self.nodes.values():
            await node.start()

    async def close(self) -> None:
        await self.coordinator.close()
        for node in self.nodes.values():
            await node.close()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    async def __aenter__(self) -> "LocalCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()
