"""Consistent-hash placement ring with explicit version epochs.

Streams are placed on nodes by hashing the stream name onto a ring of
virtual nodes. Consistent hashing keeps placement stable under
membership change: removing a node moves only the streams it owned,
never reshuffles the survivors. Every mutation bumps :attr:`HashRing.
version`, so the coordinator and any cached client can detect that a
placement decision predates a failover and must be recomputed.

Hashing is :mod:`hashlib`-based (BLAKE2b), never the builtin ``hash``:
CI pins ``PYTHONHASHSEED`` and cluster members must agree on placement
across processes, so the hash must be stable across interpreters by
construction, not by environment variable.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

__all__ = ["HashRing", "stable_hash"]

#: Virtual nodes per physical node. 64 points smooths the load split to
#: a few percent while keeping ring rebuilds trivially cheap at the
#: cluster sizes this module targets (single digits of nodes).
DEFAULT_VNODES = 64


def stable_hash(key: str) -> int:
    """64-bit position on the ring, identical in every interpreter."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent-hash ring mapping stream ids to node ids.

    Attributes:
        version: epoch counter, bumped on every add/remove. Two parties
            holding the same version agree on every placement.
    """

    def __init__(self, nodes: Tuple[str, ...] = (), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._vnodes = vnodes
        self._points: List[int] = []
        self._owners: Dict[int, str] = {}
        self._nodes: List[str] = []
        self.version = 0
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Current members, in insertion order."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        """Join a node; bumps the epoch."""
        if not node:
            raise ValueError("node id must be a non-empty string")
        if node in self._nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        for i in range(self._vnodes):
            point = stable_hash(f"{node}#{i}")
            # Ties across distinct vnode labels are astronomically
            # unlikely at 64 bits; deterministic last-wins keeps the
            # ring well-defined even then.
            if point not in self._owners:
                bisect.insort(self._points, point)
            self._owners[point] = node
        self._nodes.append(node)
        self.version += 1

    def remove(self, node: str) -> None:
        """Leave (or fail) a node; bumps the epoch."""
        if node not in self._nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        for i in range(self._vnodes):
            point = stable_hash(f"{node}#{i}")
            if self._owners.get(point) == node:
                del self._owners[point]
                index = bisect.bisect_left(self._points, point)
                if index < len(self._points) and self._points[index] == point:
                    del self._points[index]
        self._nodes.remove(node)
        self.version += 1

    def owner(self, key: str) -> str:
        """The single node owning ``key`` (first clockwise vnode)."""
        return self.placement(key, 1)[0]

    def placement(self, key: str, k: int) -> Tuple[str, ...]:
        """First ``k`` *distinct* nodes clockwise from ``key``'s point.

        The first entry is the primary, the rest are replicas. When the
        ring holds fewer than ``k`` nodes the whole membership is
        returned — a degraded but well-defined placement.

        Raises:
            ValueError: empty ring or ``k < 1``.
        """
        if k < 1:
            raise ValueError("placement size k must be >= 1")
        if not self._points:
            raise ValueError("placement on an empty ring")
        start = bisect.bisect_right(self._points, stable_hash(key))
        chosen: List[str] = []
        for offset in range(len(self._points)):
            point = self._points[(start + offset) % len(self._points)]
            node = self._owners[point]
            if node not in chosen:
                chosen.append(node)
                if len(chosen) == k:
                    break
        return tuple(chosen)

    def spread(self, keys: List[str]) -> Dict[str, int]:
        """Owner histogram for a key sample (load-balance diagnostics)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts
