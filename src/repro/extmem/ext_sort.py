"""External merge sort with I/O accounting (§5 step 2 substrate).

Classic two-phase multiway merge sort in the I/O model:

1. **run formation** — read ``M`` items at a time, sort in internal
   memory, write sorted runs (``2 * scan(n)`` I/Os);
2. **multiway merge** — repeatedly merge ``k = M/B - 1`` runs through
   one input block buffer per run plus one output buffer, until a
   single run remains (``2 * scan(n)`` I/Os per level,
   ``ceil(log_k(n/M))`` levels).

Total: ``O((n/B) log_{M/B}(n/B)) = O(sort(n))`` I/Os, which the THM5
bench verifies against the device counters.

Sorting is stable on a named key field of a structured dtype, which is
how superaccumulator components ``(index, digit)`` are ordered by
exponent without disturbing digit payloads.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from repro.extmem.device import BlockDevice
from repro.extmem.ext_array import ExtArray

__all__ = ["external_merge_sort"]


def _form_runs(
    device: BlockDevice, source: ExtArray, key: str, tag: str
) -> List[ExtArray]:
    """Phase 1: memory-sized sorted runs."""
    M = device.memory
    B = device.block_size
    run_items = max(B, (M // B) * B)  # whole blocks, as much as fits
    runs: List[ExtArray] = []
    buffer: List[np.ndarray] = []
    buffered = 0

    def emit() -> None:
        nonlocal buffer, buffered
        if not buffered:
            return
        with device.allocate(buffered, what="run formation"):
            chunk = np.concatenate(buffer)
            chunk = chunk[np.argsort(chunk[key], kind="stable")]
            run = ExtArray(device, f"{tag}.run{len(runs)}")
            with run.writer() as w:
                w.write(chunk)
            runs.append(run)
        buffer = []
        buffered = 0

    for block in source.scan():
        buffer.append(block)
        buffered += block.shape[0]
        if buffered >= run_items:
            emit()
    emit()
    return runs


def _merge_group(
    device: BlockDevice, group: List[ExtArray], out_name: str, key: str
) -> ExtArray:
    """Merge up to ``M/B - 1`` sorted runs through one block buffer each."""
    B = device.block_size
    out = ExtArray(device, out_name)
    with device.allocate((len(group) + 1) * B, what="multiway merge buffers"):
        cursors = []  # per-run: (block array, offset, next block idx)
        for r, run in enumerate(group):
            if run.num_blocks:
                cursors.append([run.read_block(0), 0, 1])
            else:
                cursors.append([None, 0, 0])
        heap = []
        for r, cur in enumerate(cursors):
            if cur[0] is not None and cur[0].shape[0]:
                heapq.heappush(heap, (cur[0][key][0], r))
        with out.writer() as w:
            out_buf = None  # typed lazily from the first block seen
            out_fill = 0
            while heap:
                _, r = heapq.heappop(heap)
                block, off, nxt = cursors[r]
                if out_buf is None:
                    out_buf = np.empty(B, dtype=block.dtype)
                out_buf[out_fill] = block[off]
                out_fill += 1
                if out_fill == B:
                    w.write(out_buf)
                    out_fill = 0
                off += 1
                if off == block.shape[0]:
                    if nxt < group[r].num_blocks:
                        block = group[r].read_block(nxt)
                        cursors[r] = [block, 0, nxt + 1]
                        heapq.heappush(heap, (block[key][0], r))
                else:
                    cursors[r] = [block, off, nxt]
                    heapq.heappush(heap, (block[key][off], r))
            if out_buf is not None and out_fill:
                w.write(out_buf[:out_fill])
    for run in group:
        device.delete(run.name)
    return out


def external_merge_sort(
    device: BlockDevice, source: ExtArray, *, key: str, out_name: str
) -> ExtArray:
    """Sort ``source`` by ``key`` into a new file ``out_name``.

    ``source`` is left intact; intermediate runs are deleted as they
    are consumed. Stable within runs and across the tie-broken merge
    (ties resolve by run order, i.e. original block order).
    """
    fanout = max(2, device.memory // device.block_size - 1)
    runs = _form_runs(device, source, key, out_name)
    if not runs:
        return ExtArray(device, out_name)
    level = 0
    while len(runs) > 1:
        merged: List[ExtArray] = []
        for g in range(0, len(runs), fanout):
            group = runs[g : g + fanout]
            name = f"{out_name}.merge{level}.{g // fanout}"
            if len(group) == 1:
                merged.append(group[0])
            else:
                merged.append(_merge_group(device, group, name, key))
        runs = merged
        level += 1
    final = runs[0]
    if final.name != out_name:
        device.rename(final.name, out_name)
        final = ExtArray(device, out_name)
    return final
