"""Closed-form I/O bounds for comparing against measured counters.

``scan(n)`` and ``sort(n)`` in the notation of the paper's footnotes 7
and 8, with the constant factors of *this* implementation spelled out
so benches can assert measured/predicted ratios stay near 1.
"""

from __future__ import annotations

import math

__all__ = ["scan_bound", "sort_bound", "sum_sorted_bound", "sum_scan_bound"]


def scan_bound(n: int, block_size: int) -> int:
    """``scan(n) = ceil(n / B)`` block transfers to read n items once."""
    return -(-n // block_size)


def sort_bound(n: int, memory: int, block_size: int) -> int:
    """I/Os of our two-phase multiway merge sort on ``n`` items.

    Run formation reads and writes everything once; each merge level
    reads and writes everything once; there are
    ``ceil(log_k(ceil(n / M)))`` levels with fan-in ``k = M/B - 1``.
    This is ``Theta((n/B) log_{M/B}(n/B)) = Theta(sort(n))``.
    """
    if n <= 0:
        return 0
    scans = scan_bound(n, block_size)
    runs = max(1, -(-n // max(block_size, (memory // block_size) * block_size)))
    fanout = max(2, memory // block_size - 1)
    levels = 0 if runs == 1 else max(1, math.ceil(math.log(runs, fanout)))
    return 2 * scans * (1 + levels)


def sum_sorted_bound(
    n: int, memory: int, block_size: int, *, components_per_item: int = 3
) -> int:
    """Predicted I/Os of :func:`~repro.extmem.sum_sort.extmem_sum_sorted`.

    One input scan + component write-out, the sort on ``c*n`` component
    records, the scan-add read + output write, the back-scan, and the
    rounding reads (O(1) amortized). Constants match the implementation;
    the bench asserts measured <= ~2x this prediction.
    """
    c = components_per_item
    return (
        scan_bound(n, block_size)  # read input
        + scan_bound(c * n, block_size)  # write components
        + sort_bound(c * n, memory, block_size)  # sort components
        + 2 * scan_bound(c * n, block_size)  # scan-add read + output write
        + 2 * scan_bound(c * n, block_size)  # back-scan + rounding reads
    )


def sum_scan_bound(n: int, block_size: int) -> int:
    """Predicted I/Os of :func:`~repro.extmem.sum_scan.extmem_sum_scan`."""
    return scan_bound(n, block_size)
