"""Theorem 6: exact summation in ``O(scan(n))`` I/Os when ``sigma(n) <= M``.

When the whole superaccumulator fits in internal memory there is no
need to sort: keep it resident, stream the input once, deposit every
block, and round at the end. The device's memory budget is charged for
the accumulator's active components plus one input block, so running
this with ``M < sigma(n)`` raises
:class:`~repro.errors.ModelViolationError` — the exact boundary the
theorem draws.
"""

from __future__ import annotations

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.extmem.device import BlockDevice, IOStats
from repro.extmem.ext_array import ExtArray
from repro.extmem.sum_sort import ExtMemSumResult

__all__ = ["extmem_sum_scan"]


def extmem_sum_scan(
    device: BlockDevice,
    source: ExtArray,
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
) -> ExtMemSumResult:
    """Correctly rounded sum of a float64 file in one scan (Theorem 6).

    Raises:
        ModelViolationError: if the accumulator's active-component count
            ever exceeds what the internal memory can hold alongside an
            input block (``sigma(n) > M - B``), i.e. when the theorem's
            precondition fails and the sorting-based algorithm
            (:func:`~repro.extmem.sum_sort.extmem_sum_sorted`) is needed.
    """
    start_reads = device.stats.reads
    start_writes = device.stats.writes

    acc = SparseSuperaccumulator.zero(radix)
    B = device.block_size
    for block in source.scan():
        # The resident footprint during a block's processing: the input
        # block, the accumulator before, and the (at most B*3 component)
        # batch being folded in.
        batch = SparseSuperaccumulator.from_floats(block, radix)
        with device.allocate(
            B + acc.active_count + batch.active_count,
            what="in-memory superaccumulator (Theorem 6 requires sigma <= M)",
        ):
            acc = acc.add(batch)

    with device.allocate(acc.active_count, what="rounding"):
        value = acc.to_float(mode)

    io = IOStats(
        reads=device.stats.reads - start_reads,
        writes=device.stats.writes - start_writes,
    )
    return ExtMemSumResult(value=value, io=io, components=acc.active_count)
