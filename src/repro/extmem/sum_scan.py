"""Theorem 6: exact summation in ``O(scan(n))`` I/Os when ``sigma(n) <= M``.

When the whole superaccumulator fits in internal memory there is no
need to sort: keep it resident, stream the input once, deposit every
block, and round at the end. The device's memory budget is charged for
the accumulator's active components plus one input block, so running
this with ``M < sigma(n)`` raises
:class:`~repro.errors.ModelViolationError` — the exact boundary the
theorem draws.

The scan is a kernel schedule: any registered
:class:`~repro.kernels.base.SumKernel` can supply fold/combine/round,
with the kernel's ``width`` (the paper's sigma) charged against the
memory budget. A speculative kernel whose certification fails at round
time triggers one exact re-scan — extra I/Os, never a wrong bit.
"""

from __future__ import annotations

from typing import Optional

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.errors import CertificationError
from repro.extmem.device import BlockDevice, IOStats
from repro.extmem.ext_array import ExtArray
from repro.extmem.sum_sort import ExtMemSumResult
from repro.kernels import SumKernel, get_kernel

__all__ = ["extmem_sum_scan"]


def extmem_sum_scan(
    device: BlockDevice,
    source: ExtArray,
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    kernel: Optional[SumKernel] = None,
) -> ExtMemSumResult:
    """Correctly rounded sum of a float64 file in one scan (Theorem 6).

    Raises:
        ModelViolationError: if the accumulator's active-component count
            ever exceeds what the internal memory can hold alongside an
            input block (``sigma(n) > M - B``), i.e. when the theorem's
            precondition fails and the sorting-based algorithm
            (:func:`~repro.extmem.sum_sort.extmem_sum_sorted`) is needed.
    """
    if kernel is None:
        kernel = get_kernel("sparse", radix=radix)
    if mode != "nearest" and not kernel.exact:
        kernel = kernel.exact_variant()
    start_reads = device.stats.reads
    start_writes = device.stats.writes
    B = device.block_size

    attempt = kernel
    while True:
        acc = attempt.zero()
        for block in source.scan():
            # The resident footprint during a block's processing: the
            # input block, the partial before, and the (at most B*3
            # component) batch being folded in.
            batch = attempt.fold(block)
            with device.allocate(
                B + attempt.width(acc) + attempt.width(batch),
                what="in-memory superaccumulator (Theorem 6 requires sigma <= M)",
            ):
                acc = attempt.combine(acc, batch)
        try:
            with device.allocate(attempt.width(acc), what="rounding"):
                value = attempt.round(acc, mode)
            break
        except CertificationError:
            # Speculation failed the proof: re-scan with the exact
            # kernel. The I/O totals below keep both scans' cost.
            attempt = attempt.exact_variant()

    io = IOStats(
        reads=device.stats.reads - start_reads,
        writes=device.stats.writes - start_writes,
    )
    return ExtMemSumResult(
        value=value,
        io=io,
        components=attempt.width(acc),
        partial=attempt.to_wire(acc),
    )
