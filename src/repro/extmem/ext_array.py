"""Blocked arrays on a :class:`~repro.extmem.device.BlockDevice`.

Thin, scan-oriented wrapper: load a NumPy array onto the device, stream
it back block by block (every block transfer costed), or append to it
through a write buffer. All the Section 5 algorithms are phrased as
scans over these.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.extmem.device import BlockDevice

__all__ = ["ExtArray", "BlockWriter"]


class ExtArray:
    """A named blocked array on a device."""

    def __init__(self, device: BlockDevice, name: str) -> None:
        self.device = device
        self.name = name
        if not device.exists(name):
            device.create(name)

    @classmethod
    def from_numpy(
        cls, device: BlockDevice, name: str, values: np.ndarray
    ) -> "ExtArray":
        """Write ``values`` to the device as a new file (costs writes)."""
        arr = cls(device, name)
        B = device.block_size
        for start in range(0, values.shape[0], B):
            device.append_block(name, values[start : start + B])
        return arr

    def __len__(self) -> int:
        return self.device.num_items(self.name)

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the file."""
        return self.device.num_blocks(self.name)

    def scan(self, *, reverse: bool = False) -> Iterator[np.ndarray]:
        """Stream blocks (front-to-back, or back-to-front for the §5
        step-4 style back-scan), costing one read each."""
        n = self.num_blocks
        order = range(n - 1, -1, -1) if reverse else range(n)
        for i in order:
            yield self.device.read_block(self.name, i)

    def read_block(self, index: int) -> np.ndarray:
        """Read one block by position (costs 1 read)."""
        return self.device.read_block(self.name, index)

    def writer(self) -> "BlockWriter":
        """Buffered appender (flushes full blocks as they fill)."""
        return BlockWriter(self)

    def to_numpy(self) -> np.ndarray:
        """Materialize the whole file, costing a full scan of reads."""
        blocks = list(self.scan())
        if not blocks:
            return np.empty(0)
        return np.concatenate(blocks)


class BlockWriter:
    """Accumulates items and appends full blocks to an :class:`ExtArray`.

    Use as a context manager so the final partial block is flushed::

        with out.writer() as w:
            for chunk in stream:
                w.write(chunk)
    """

    def __init__(self, target: ExtArray) -> None:
        self._target = target
        self._pending: Optional[np.ndarray] = None

    def write(self, items: np.ndarray) -> None:
        """Queue ``items``; full blocks are written through immediately."""
        if items.shape[0] == 0:
            return
        if self._pending is not None:
            items = np.concatenate([self._pending, items])
            self._pending = None
        B = self._target.device.block_size
        full = (items.shape[0] // B) * B
        for start in range(0, full, B):
            self._target.device.append_block(
                self._target.name, items[start : start + B]
            )
        if items.shape[0] > full:
            self._pending = np.array(items[full:], copy=True)

    def flush(self) -> None:
        """Write any buffered partial block."""
        if self._pending is not None and self._pending.shape[0]:
            self._target.device.append_block(self._target.name, self._pending)
        self._pending = None

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        if exc[0] is None:
            self.flush()
