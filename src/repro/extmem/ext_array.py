"""Blocked arrays on a :class:`~repro.extmem.device.BlockDevice`.

Thin, scan-oriented wrapper: load a NumPy array onto the device, stream
it back block by block (every block transfer costed), or append to it
through a write buffer. All the Section 5 algorithms are phrased as
scans over these.

:class:`MappedExtArray` is the real-I/O sibling: the same blocked scan
interface over an on-disk ``.f64`` dataset, backed by ``mmap`` instead
of the costed simulator — its slices are views into the page cache,
and :meth:`MappedExtArray.block_refs` feeds those slices to the
MapReduce combine phase directly as zero-copy descriptors.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Optional, Union

import numpy as np

from repro.extmem.device import BlockDevice

__all__ = ["ExtArray", "BlockWriter", "MappedExtArray"]


class ExtArray:
    """A named blocked array on a device."""

    def __init__(self, device: BlockDevice, name: str) -> None:
        self.device = device
        self.name = name
        if not device.exists(name):
            device.create(name)

    @classmethod
    def from_numpy(
        cls, device: BlockDevice, name: str, values: np.ndarray
    ) -> "ExtArray":
        """Write ``values`` to the device as a new file (costs writes)."""
        arr = cls(device, name)
        B = device.block_size
        for start in range(0, values.shape[0], B):
            device.append_block(name, values[start : start + B])
        return arr

    def __len__(self) -> int:
        return self.device.num_items(self.name)

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the file."""
        return self.device.num_blocks(self.name)

    def scan(self, *, reverse: bool = False) -> Iterator[np.ndarray]:
        """Stream blocks (front-to-back, or back-to-front for the §5
        step-4 style back-scan), costing one read each."""
        n = self.num_blocks
        order = range(n - 1, -1, -1) if reverse else range(n)
        for i in order:
            yield self.device.read_block(self.name, i)

    def read_block(self, index: int) -> np.ndarray:
        """Read one block by position (costs 1 read)."""
        return self.device.read_block(self.name, index)

    def writer(self) -> "BlockWriter":
        """Buffered appender (flushes full blocks as they fill)."""
        return BlockWriter(self)

    def to_numpy(self) -> np.ndarray:
        """Materialize the whole file, costing a full scan of reads."""
        blocks = list(self.scan())
        if not blocks:
            return np.empty(0)
        return np.concatenate(blocks)


class MappedExtArray:
    """Blocked, mmap-backed view of an on-disk ``.f64`` dataset.

    External-memory algorithms phrased as scans run unchanged over this
    (same ``scan``/``read_block``/``num_blocks`` surface as
    :class:`ExtArray`), but blocks are zero-copy views into the mapped
    file rather than costed simulator transfers — the bridge from the
    Section 5 machinery to the real data plane. Use
    :meth:`block_refs` to hand the same blocks to
    :func:`~repro.mapreduce.runtime.run_job` as descriptors.

    Args:
        path: a dataset file written by
            :func:`repro.data.io.write_dataset`.
        block_items: items per block (the scan granularity).
    """

    def __init__(self, path: Union[str, Path], block_items: int = 1 << 17) -> None:
        from repro.data.io import map_dataset

        if block_items < 1:
            raise ValueError("block_items must be >= 1")
        self.path = Path(path)
        self.block_items = int(block_items)
        self._view = map_dataset(self.path)

    def __len__(self) -> int:
        return int(self._view.shape[0])

    @property
    def num_blocks(self) -> int:
        """Number of blocks (at least 1, mirroring the block store)."""
        n = len(self)
        return max(1, -(-n // self.block_items))

    def read_block(self, index: int) -> np.ndarray:
        """Block ``index`` as a read-only zero-copy view."""
        if not 0 <= index < self.num_blocks:
            raise IndexError(f"block {index} out of range")
        start = index * self.block_items
        return self._view[start : start + self.block_items]

    def scan(self, *, reverse: bool = False) -> Iterator[np.ndarray]:
        """Stream blocks front-to-back (or back-to-front) as views."""
        n = self.num_blocks
        order = range(n - 1, -1, -1) if reverse else range(n)
        for i in order:
            yield self.read_block(i)

    def block_refs(self) -> List["BlockRef"]:
        """Zero-copy descriptors for every block (workers re-mmap)."""
        from repro.data.io import dataset_block_refs

        return dataset_block_refs(self.path, self.block_items)

    def to_numpy(self) -> np.ndarray:
        """Materialize the dataset as an in-memory array (one copy)."""
        return np.array(self._view, dtype=np.float64)


class BlockWriter:
    """Accumulates items and appends full blocks to an :class:`ExtArray`.

    Use as a context manager so the final partial block is flushed::

        with out.writer() as w:
            for chunk in stream:
                w.write(chunk)
    """

    def __init__(self, target: ExtArray) -> None:
        self._target = target
        self._pending: Optional[np.ndarray] = None

    def write(self, items: np.ndarray) -> None:
        """Queue ``items``; full blocks are written through immediately."""
        if items.shape[0] == 0:
            return
        if self._pending is not None:
            items = np.concatenate([self._pending, items])
            self._pending = None
        B = self._target.device.block_size
        full = (items.shape[0] // B) * B
        for start in range(0, full, B):
            self._target.device.append_block(
                self._target.name, items[start : start + B]
            )
        if items.shape[0] > full:
            self._pending = np.array(items[full:], copy=True)

    def flush(self) -> None:
        """Write any buffered partial block."""
        if self._pending is not None and self._pending.shape[0]:
            self._target.device.append_block(self._target.name, self._pending)
        self._pending = None

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        if exc[0] is None:
            self.flush()
