"""Theorem 5: exact summation in ``O(sort(n))`` I/Os.

The five steps of the paper's sorting-based external-memory algorithm:

1. **convert** — one scan turning each float block into superaccumulator
   components ``(index, digit)``;
2. **sort** — external merge sort of all components by index (exponent);
3. **scan-add** — stream the sorted components through a *hot window*:
   because components arrive in index order and the representation is
   carry-free, only the current index's partial sum and a bounded carry
   are resident; finished components stream out;
4. **back-to-front scan** — signed-carry verification pass over the
   output (our step 3 already emits balanced non-overlapping digits, so
   this pass only checks and counts the scan the paper performs);
5. **round** — read components most-significant-first, assemble the
   leading window, summarize the rest as a sticky sign, and round.

Every step is a constant number of scans except step 2, so the device
counters come out ``O(sort(n))`` — the THM5 bench plots them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig, split_floats_vec
from repro.core.rounding import round_windowed, window_size
from repro.errors import RepresentationError
from repro.extmem.device import BlockDevice, IOStats
from repro.extmem.ext_array import BlockWriter, ExtArray
from repro.extmem.ext_sort import external_merge_sort

__all__ = ["extmem_sum_sorted", "ExtMemSumResult", "COMPONENT_DTYPE"]

#: On-device record for one superaccumulator component.
COMPONENT_DTYPE = np.dtype([("idx", "<i8"), ("dig", "<i8")])


@dataclass
class ExtMemSumResult:
    """Outcome of an external-memory summation.

    Attributes:
        value: the correctly rounded float sum.
        io: snapshot of the device counters consumed by this run.
        components: number of non-zero output components (``sigma``).
        partial: wire frame of the final kernel accumulator, when the
            run went through a kernel schedule (the scan algorithm).
            Lets exact-fraction reductions (:mod:`repro.reduce`) read
            the exact term sum back instead of only the rounded float.
    """

    value: float
    io: IOStats
    components: int
    partial: Optional[bytes] = None


class _StreamAccumulator:
    """Hot-window adder for index-sorted component streams (§5 step 3).

    Receives ``(index, digit_sum)`` contributions in non-decreasing
    index order and emits balanced non-overlapping components in
    ascending order. Only the current index's running value is resident
    — the "hot-swap buffer" of the paper — and carries ripple upward
    through at most a few positions per flush because each emitted
    digit is reduced immediately.
    """

    def __init__(self, radix: RadixConfig, writer: BlockWriter) -> None:
        self._w = radix.w
        self._R = radix.R
        self._half = radix.R >> 1
        self._writer = writer
        self._idx: Optional[int] = None
        self._val = 0  # Python int: unbounded, no overflow analysis needed
        self.emitted = 0
        self._buf_idx: list = []
        self._buf_dig: list = []

    def add(self, index: int, value: int) -> None:
        """Fold one contribution; ``index`` must be >= the stream frontier."""
        if self._idx is None:
            self._idx, self._val = index, value
            return
        if index == self._idx:
            self._val += value
            return
        if index < self._idx:
            raise RepresentationError("component stream not sorted by index")
        self._flush_until(index)
        if self._idx == index:
            self._val += value
        else:
            self._idx, self._val = index, value

    def _emit(self, index: int, digit: int) -> None:
        # Batch single-component emissions so the block writer sees
        # array-sized appends (one np.concatenate per batch, not per
        # component — the HPC guides' "avoid per-element array ops").
        self._buf_idx.append(index)
        self._buf_dig.append(digit)
        self.emitted += 1
        if len(self._buf_idx) >= 512:
            self._drain_buffer()

    def _drain_buffer(self) -> None:
        if not self._buf_idx:
            return
        rec = np.empty(len(self._buf_idx), dtype=COMPONENT_DTYPE)
        rec["idx"] = self._buf_idx
        rec["dig"] = self._buf_dig
        self._writer.write(rec)
        self._buf_idx.clear()
        self._buf_dig.clear()

    def _flush_until(self, stop_index: int) -> None:
        """Emit finished positions below ``stop_index``, rippling carries."""
        idx, val = self._idx, self._val
        while idx < stop_index and val != 0:
            rem = ((val + self._half) % self._R) - self._half
            carry = (val - rem) >> self._w
            if rem:
                self._emit(idx, rem)
            idx += 1
            val = carry
        if val == 0:
            idx = stop_index
        self._idx, self._val = idx, val

    def finish(self) -> None:
        """Drain the remaining carry chain."""
        if self._idx is None:
            return
        # A bound safely above any possible ripple length.
        self._flush_until(self._idx + 70 + (abs(self._val).bit_length() // self._w) + 2)
        if self._val:
            raise RepresentationError("carry chain failed to terminate")
        self._drain_buffer()


def _convert(
    device: BlockDevice,
    source: ExtArray,
    radix: RadixConfig,
    name: str,
) -> ExtArray:
    """Step 1: floats -> component records, one scan."""
    comps = ExtArray(device, name)
    B = device.block_size
    with comps.writer() as w:
        for block in source.scan():
            with device.allocate(5 * B, what="conversion buffers"):
                idx, dig = split_floats_vec(block, radix)
                rec = np.empty(idx.shape[0], dtype=COMPONENT_DTYPE)
                rec["idx"] = idx
                rec["dig"] = dig
                w.write(rec)
    return comps


def _scan_add(
    device: BlockDevice,
    sorted_comps: ExtArray,
    radix: RadixConfig,
    name: str,
) -> ExtArray:
    """Step 3: sorted components -> non-overlapping output components."""
    out = ExtArray(device, name)
    B = device.block_size
    with out.writer() as w:
        acc = _StreamAccumulator(radix, w)
        for block in sorted_comps.scan():
            with device.allocate(3 * B, what="scan-add buffers"):
                uniq, starts = np.unique(block["idx"], return_index=True)
                sums = np.add.reduceat(block["dig"], starts)
                for j, s in zip(uniq, sums):
                    acc.add(int(j), int(s))
        acc.finish()
    return out


def _verify_back_scan(device: BlockDevice, out: ExtArray, radix: RadixConfig) -> None:
    """Step 4: the paper's back-to-front carry pass (here: verification)."""
    half = radix.R >> 1
    prev_idx = None
    for block in out.scan(reverse=True):
        with device.allocate(device.block_size, what="back-scan buffer"):
            if block.shape[0] == 0:
                continue
            if (block["dig"] < -half).any() or (block["dig"] >= half).any():
                raise RepresentationError("output digit out of balanced range")
            hi = int(block["idx"][-1])
            if prev_idx is not None and hi >= prev_idx:
                raise RepresentationError("output components not ascending")
            prev_idx = int(block["idx"][0])


def _round_from_top(
    device: BlockDevice, out: ExtArray, radix: RadixConfig, mode: str
) -> float:
    """Step 5: window the leading components, sticky-summarize the rest."""
    K = window_size(radix)
    window: Optional[np.ndarray] = None
    window_base = 0
    tail_sign = 0
    for block in out.scan(reverse=True):
        with device.allocate(device.block_size + K, what="rounding window"):
            for pos in range(block.shape[0] - 1, -1, -1):
                j = int(block["idx"][pos])
                d = int(block["dig"][pos])
                if d == 0:
                    continue
                if window is None:
                    window_base = j - K + 1
                    window = np.zeros(K, dtype=np.int64)
                    window[K - 1] = d
                elif j >= window_base:
                    window[j - window_base] = d
                else:
                    tail_sign = 1 if d > 0 else -1
                    break
        if tail_sign:
            break
    if window is None:
        return 0.0
    return round_windowed(window, window_base, tail_sign, radix, mode)


def extmem_sum_sorted(
    device: BlockDevice,
    source: ExtArray,
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    scratch_prefix: str = "_thm5",
) -> ExtMemSumResult:
    """Correctly rounded sum of a float64 file in ``O(sort(n))`` I/Os.

    Requires internal memory of at least ~6 blocks (one input block,
    its up-to-3x component expansion, and a write buffer are resident
    during conversion; the merge holds fan-in + 1 block buffers).
    """
    start_reads = device.stats.reads
    start_writes = device.stats.writes

    comps = _convert(device, source, radix, f"{scratch_prefix}.components")
    sorted_comps = external_merge_sort(
        device, comps, key="idx", out_name=f"{scratch_prefix}.sorted"
    )
    device.delete(comps.name)
    out = _scan_add(device, sorted_comps, radix, f"{scratch_prefix}.sum")
    device.delete(sorted_comps.name)
    _verify_back_scan(device, out, radix)
    value = _round_from_top(device, out, radix, mode)
    components = len(out)
    device.delete(out.name)

    io = IOStats(
        reads=device.stats.reads - start_reads,
        writes=device.stats.writes - start_writes,
    )
    return ExtMemSumResult(value=value, io=io, components=components)
