"""External-memory substrate and the paper's Section 5 algorithms.

* :class:`BlockDevice` / :class:`ExtArray` — the I/O-model machine;
* :func:`external_merge_sort` — the sorting substrate;
* :func:`extmem_sum_sorted` — Theorem 5 (``O(sort(n))`` I/Os);
* :func:`extmem_sum_scan` — Theorem 6 (``O(scan(n))`` I/Os when the
  superaccumulator fits in internal memory);
* :class:`MappedExtArray` — the same scan interface over a real
  on-disk dataset via mmap, feeding the MapReduce data plane;
* :mod:`repro.extmem.io_model` — closed-form bounds for the benches.
"""

from repro.extmem.device import BlockDevice, IOStats
from repro.extmem.ext_array import BlockWriter, ExtArray, MappedExtArray
from repro.extmem.ext_sort import external_merge_sort
from repro.extmem.io_model import (
    scan_bound,
    sort_bound,
    sum_scan_bound,
    sum_sorted_bound,
)
from repro.extmem.sum_scan import extmem_sum_scan
from repro.extmem.sum_sort import COMPONENT_DTYPE, ExtMemSumResult, extmem_sum_sorted

__all__ = [
    "BlockDevice",
    "IOStats",
    "BlockWriter",
    "ExtArray",
    "MappedExtArray",
    "external_merge_sort",
    "scan_bound",
    "sort_bound",
    "sum_scan_bound",
    "sum_sorted_bound",
    "extmem_sum_scan",
    "COMPONENT_DTYPE",
    "ExtMemSumResult",
    "extmem_sum_sorted",
]
