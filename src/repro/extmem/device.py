"""Simulated external-memory machine (Vitter's I/O model).

The model of the paper's Section 5: an internal memory holding ``M``
items, an unbounded external memory accessed in blocks of ``B`` items,
cost measured in block transfers. :class:`BlockDevice` stores named
files as lists of NumPy blocks, counts every read/write, and (softly)
enforces the internal-memory budget through an allocation context the
algorithms use to declare what they hold resident.

Items are dtype-agnostic: the summation pipeline stores float64 input
files and structured ``(index, digit)`` component files on the same
device; ``M`` and ``B`` are in items, matching how sort/scan bounds are
usually stated.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List

import numpy as np

from repro.errors import ModelViolationError

__all__ = ["BlockDevice", "IOStats"]


@dataclass
class IOStats:
    """Block-transfer counters.

    Attributes:
        reads: blocks transferred external -> internal.
        writes: blocks transferred internal -> external.
    """

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        """Total I/Os (the model's cost measure)."""
        return self.reads + self.writes


@dataclass
class BlockDevice:
    """External memory with I/O accounting and a memory budget.

    Args:
        block_size: items per block (``B``).
        memory: internal memory capacity in items (``M``). Must allow at
            least three blocks (input, output, working) or no two-file
            streaming algorithm can run.
        enforce_memory: when True, :meth:`allocate` raises
            :class:`ModelViolationError` on over-subscription.
    """

    block_size: int
    memory: int
    enforce_memory: bool = True
    stats: IOStats = field(default_factory=IOStats)
    _files: Dict[str, List[np.ndarray]] = field(default_factory=dict)
    _allocated: int = 0

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block_size must be >= 1")
        if self.memory < 3 * self.block_size:
            raise ValueError("internal memory must hold at least 3 blocks")

    # ------------------------------------------------------------------
    # file namespace
    # ------------------------------------------------------------------

    def create(self, name: str) -> None:
        """Create an empty file (error if it exists)."""
        if name in self._files:
            raise ValueError(f"file {name!r} already exists")
        self._files[name] = []

    def delete(self, name: str) -> None:
        """Remove a file and free its blocks."""
        self._files.pop(name)

    def rename(self, old: str, new: str) -> None:
        """Metadata-only move (no block transfers)."""
        if new in self._files:
            raise ValueError(f"file {new!r} already exists")
        self._files[new] = self._files.pop(old)

    def exists(self, name: str) -> bool:
        """Whether ``name`` is a file on this device."""
        return name in self._files

    def num_blocks(self, name: str) -> int:
        """Block count of a file."""
        return len(self._files[name])

    def num_items(self, name: str) -> int:
        """Item count of a file."""
        return sum(b.shape[0] for b in self._files[name])

    def list_files(self) -> List[str]:
        """Names of all files (deterministic order)."""
        return sorted(self._files)

    # ------------------------------------------------------------------
    # block transfers (the costed operations)
    # ------------------------------------------------------------------

    def read_block(self, name: str, index: int) -> np.ndarray:
        """Transfer one block into internal memory (costs 1 read)."""
        self.stats.reads += 1
        return self._files[name][index]

    def append_block(self, name: str, block: np.ndarray) -> None:
        """Transfer one block out to the end of a file (costs 1 write)."""
        if block.shape[0] == 0:
            return
        if block.shape[0] > self.block_size:
            raise ValueError(
                f"block of {block.shape[0]} items exceeds B={self.block_size}"
            )
        self.stats.writes += 1
        self._files[name].append(np.array(block, copy=True))

    # ------------------------------------------------------------------
    # internal-memory budget
    # ------------------------------------------------------------------

    @contextmanager
    def allocate(self, items: int, *, what: str = "buffer") -> Iterator[None]:
        """Declare ``items`` of internal memory held for the block's scope."""
        if items < 0:
            raise ValueError("allocation must be non-negative")
        if self.enforce_memory and self._allocated + items > self.memory:
            raise ModelViolationError(
                f"{what}: internal memory exceeded "
                f"({self._allocated} + {items} > M={self.memory})"
            )
        self._allocated += items
        try:
            yield
        finally:
            self._allocated -= items

    # ------------------------------------------------------------------
    # convenience (uncosted debug access for tests)
    # ------------------------------------------------------------------

    def peek(self, name: str) -> np.ndarray:
        """Entire file contents without I/O accounting (tests only)."""
        blocks = self._files[name]
        if not blocks:
            return np.empty(0)
        return np.concatenate(blocks)
