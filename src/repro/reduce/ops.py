"""Reduction ops: error-free expansions composed with sum kernels.

The paper's machinery makes *summation* exact; the reductions users
actually need — dot products, norms, moments — are sums of error-free
transformed terms. A :class:`ReduceOp` declares exactly that
composition:

* ``expand`` turns the float inputs into one or two **term streams**
  whose exact sums equal the exact mathematical quantities (via the
  vectorized EFTs :func:`repro.core.eft.two_product_vec` /
  :func:`repro.core.eft.two_square_vec`);
* any registered :class:`~repro.kernels.base.SumKernel` folds the terms
  through the existing exact machinery on any execution plane;
* ``finish`` converts the folded result into the op's value with one
  final rounding — so the returned float is the correctly rounded value
  of the true mathematical quantity for the given inputs.

Ops split by what their finish needs:

* **rounded-sum ops** (``sum``, ``dot``): the answer *is* the correctly
  rounded sum of the terms, so every kernel — exact or speculative —
  can host them; a certified fast path stays a certified fast path.
* **exact-fraction ops** (``norm2``, ``mean``, ``var``): the finish
  performs algebra (square root, division) on the *exact* term sum
  before the single rounding, so only kernels with
  ``exact = True`` (whose partials expose
  :meth:`~repro.kernels.base.SumKernel.exact_fraction`) can host them.
  The planner's candidate table rejects the rest with a reason.

Expansion exactness has a domain: TwoProduct/TwoSquare are error-free
only while the products neither overflow nor lose bits to underflow
(and Dekker's splitter itself overflows above ``2**996``).
``check_domain`` polices that band up front and raises
:class:`~repro.errors.ReductionRangeError` instead of silently folding
an inexact term stream; the full-range (slower, Fraction-based) serial
references in :mod:`repro.stats` remain available for out-of-band
magnitudes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.eft import two_product_vec, two_square_vec
from repro.errors import EmptyStreamError, ReductionRangeError
from repro.stats import round_fraction, sqrt_round_fraction
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = [
    "ReduceOp",
    "SumOp",
    "DotOp",
    "Norm2Op",
    "MeanOp",
    "VarOp",
    "register_op",
    "get_op",
    "op_names",
    "kernel_supports",
    "square_domain_mask",
    "product_domain_mask",
]

#: TwoSquare is error-free only while ``x*x`` stays comfortably inside
#: the normal range; magnitudes in this band square safely (shared with
#: the serial reference in :mod:`repro.stats`).
_SQ_LO = 2.0**-500
_SQ_HI = 2.0**500

#: TwoProduct needs the product's error term above the subnormal floor
#: and both factors below the point where Dekker's splitter overflows.
_DOT_P_LO = 2.0**-1000
_DOT_AB_HI = 2.0**996


def square_domain_mask(x: np.ndarray) -> np.ndarray:
    """True where ``x*x`` expands error-free through TwoSquare."""
    a = np.abs(x)
    # reprolint: disable-next-line=FP002 -- exact-zero mask, not a tolerance
    return ((a > _SQ_LO) & (a < _SQ_HI)) | (a == 0.0)


def product_domain_mask(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """True where ``x*y`` expands error-free through TwoProduct.

    Zero-paired elements are always in domain: their product term is an
    exact 0.0 regardless of the partner's magnitude (the expansion
    masks them out before the splitter can overflow on the partner).
    """
    with np.errstate(over="ignore", under="ignore"):
        p = x * y
    safe = (
        np.isfinite(p)
        & (np.abs(p) > _DOT_P_LO)
        & (np.abs(x) < _DOT_AB_HI)
        & (np.abs(y) < _DOT_AB_HI)
    )
    # reprolint: disable-next-line=FP002 -- exact-zero mask, not a tolerance
    return safe | (x == 0.0) | (y == 0.0)


def _require_domain(mask: np.ndarray, op_name: str, primitive: str) -> None:
    if bool(np.all(mask)):
        return
    bad = int(np.count_nonzero(~mask))
    raise ReductionRangeError(
        f"{op_name}: {bad} input(s) outside the error-free {primitive} "
        f"domain (product magnitude must stay inside the normal range); "
        f"use the full-range serial references in repro.stats for such data"
    )


class ReduceOp(ABC):
    """One reduction declared as expansion + kernel fold + finish.

    Class attributes:
        name: registry name.
        arity: number of input arrays (1 or 2).
        streams: independent term streams the op folds (1, or 2 when
            the finish needs two exact sums — e.g. ``var`` needs both
            ``sum(x)`` and ``sum(x^2)``).
        needs_exact: True when the finish consumes exact Fractions
            (division / square root before the single rounding), which
            restricts hosting to kernels with ``exact = True``.
    """

    name: str = "?"
    arity: int = 1
    streams: int = 1
    needs_exact: bool = False

    def validate(
        self, x, y=None
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Coerce inputs to finite float64 arrays; shape-check pairs."""
        xa = ensure_float64_array(x)
        check_finite_array(xa)
        if self.arity == 2:
            if y is None:
                raise ValueError(f"op {self.name!r} needs two arrays")
            ya = ensure_float64_array(y)
            if xa.shape != ya.shape:
                raise ValueError("length mismatch")
            check_finite_array(ya)
            return xa, ya
        if y is not None:
            raise ValueError(f"op {self.name!r} takes a single array")
        return xa, None

    def check_domain(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> None:
        """Raise :class:`ReductionRangeError` if expansion would be inexact."""

    @abstractmethod
    def expand(
        self, x: np.ndarray, y: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, ...]:
        """Inputs -> ``streams`` term arrays whose exact sums finish the op."""

    def finish_rounded(self, value: float, count: int, mode: str) -> float:
        """Finish from the correctly rounded term sum (rounded-sum ops)."""
        if self.needs_exact:
            raise TypeError(
                f"op {self.name!r} finishes from exact fractions, not a "
                f"rounded term sum"
            )
        return value

    @abstractmethod
    def finish_exact(
        self, fracs: Sequence[Fraction], count: int, mode: str
    ) -> float:
        """Finish from the exact term-sum Fractions (one per stream)."""

    def describe(self) -> Dict[str, object]:
        """Flat summary for CLIs and candidate tables."""
        return {
            "op": self.name,
            "arity": self.arity,
            "streams": self.streams,
            "needs_exact": self.needs_exact,
        }


class SumOp(ReduceOp):
    """Plain summation — the identity expansion.

    Exists so "sum" is just another op: every plane's reduction path
    degenerates to exactly the PR-1..8 sum pipeline.
    """

    name = "sum"

    def expand(self, x, y=None):
        return (x,)

    def finish_exact(self, fracs, count, mode):
        return round_fraction(fracs[0], mode)


class DotOp(ReduceOp):
    """Inner product: terms are TwoProduct ``(p, e)`` pairs.

    ``sum(x*y) == sum(terms)`` exactly, so the correctly rounded dot is
    the correctly rounded term sum — hostable by every kernel,
    certificates included.
    """

    name = "dot"
    arity = 2

    def check_domain(self, x, y=None):
        _require_domain(product_domain_mask(x, y), self.name, "TwoProduct")

    def expand(self, x, y=None):
        # Zero-paired elements are exact but the huge partner would
        # overflow Dekker's splitter into a nan error term: mask those
        # term pairs to an exact 0.0 after the vectorized expansion.
        with np.errstate(over="ignore", under="ignore", invalid="ignore"):
            p, e = two_product_vec(x, y)
        # reprolint: disable-next-line=FP002 -- exact-zero mask, not a tolerance
        zero = (x == 0.0) | (y == 0.0)
        if zero.any():
            p = np.where(zero, 0.0, p)
            e = np.where(zero, 0.0, e)
        return (np.concatenate([p, e]),)

    def finish_exact(self, fracs, count, mode):
        return round_fraction(fracs[0], mode)


class Norm2Op(ReduceOp):
    """Euclidean norm: terms are TwoSquare pairs; finish is an exact sqrt.

    The square root of the exact rational sum-of-squares is rounded by
    comparing candidate floats' exact squares against it
    (:func:`repro.stats.sqrt_round_fraction`) — no double rounding.
    Only nearest rounding is defined; the norm of nothing is 0.0.
    """

    name = "norm2"
    needs_exact = True

    def check_domain(self, x, y=None):
        _require_domain(square_domain_mask(x), self.name, "TwoSquare")

    def expand(self, x, y=None):
        p, e = two_square_vec(x)
        return (np.concatenate([p, e]),)

    def finish_exact(self, fracs, count, mode):
        if mode != "nearest":
            raise ValueError(
                f"norm2 defines nearest rounding only, not mode={mode!r}"
            )
        return sqrt_round_fraction(fracs[0])


class MeanOp(ReduceOp):
    """Arithmetic mean: identity expansion, exact division at finish."""

    name = "mean"
    needs_exact = True

    def expand(self, x, y=None):
        return (x,)

    def finish_exact(self, fracs, count, mode):
        if count == 0:
            raise EmptyStreamError("mean of empty reduction")
        return round_fraction(fracs[0] / count, mode)


class VarOp(ReduceOp):
    """Variance: two term streams (values, TwoSquare terms).

    Finishes as ``(sum(x^2) - sum(x)^2/n) / (n - ddof)`` entirely in
    exact rational arithmetic — immune to the catastrophic cancellation
    of the textbook float formulas — then rounds once.
    """

    name = "var"
    streams = 2
    needs_exact = True

    def __init__(self, ddof: int = 0) -> None:
        self.ddof = int(ddof)

    def check_domain(self, x, y=None):
        _require_domain(square_domain_mask(x), self.name, "TwoSquare")

    def expand(self, x, y=None):
        p, e = two_square_vec(x)
        return (x, np.concatenate([p, e]))

    def finish_exact(self, fracs, count, mode):
        n = count
        if n - self.ddof <= 0:
            raise EmptyStreamError("need more observations than ddof")
        s, ss = fracs
        return round_fraction((ss - s * s / n) / (n - self.ddof), mode)

    def describe(self):
        out = super().describe()
        out["ddof"] = self.ddof
        return out


# ---------------------------------------------------------------------------
# registry

_OPS: Dict[str, ReduceOp] = {}


def register_op(op: ReduceOp) -> ReduceOp:
    """Add an op to the registry (last registration wins, like kernels)."""
    _OPS[op.name] = op
    return op


def get_op(name: str) -> ReduceOp:
    """Look up a registered op by name."""
    try:
        return _OPS[name]
    except KeyError:
        raise ValueError(
            f"unknown reduction op {name!r}; expected one of {op_names()}"
        ) from None


def op_names() -> List[str]:
    """Sorted names of all registered ops."""
    return sorted(_OPS)


def kernel_supports(op: ReduceOp, kernel) -> bool:
    """Whether ``kernel`` can host ``op``.

    Rounded-sum ops ride any kernel; exact-fraction ops need an exact
    accumulator behind :meth:`~repro.kernels.base.SumKernel.exact_fraction`.
    """
    return (not op.needs_exact) or bool(kernel.exact)


register_op(SumOp())
register_op(DotOp())
register_op(Norm2Op())
register_op(MeanOp())
register_op(VarOp(ddof=0))
