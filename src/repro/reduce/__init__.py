"""Exact reductions: dot, norm, moments — on every plane, any kernel.

The layer that converts this repo from "exact sum service" to "exact
reduction engine". Ops are declared in :mod:`repro.reduce.ops` as an
error-free expansion composed with any registered sum kernel;
:mod:`repro.reduce.engine` schedules them onto the same eight
execution planes summation runs on. Convenience one-liners::

    from repro import reduce
    d = reduce.dot(x, y)            # correctly rounded inner product
    r = reduce.norm2(x)             # correctly rounded Euclidean norm
    m = reduce.mean(x)              # exact mean, rounded once
    v = reduce.var(x, ddof=1)       # exact variance, rounded once

Each accepts ``plane=``/``kernel=``/``workers=`` to pick where the
terms fold; the bits never change with the choice.
"""

from __future__ import annotations

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.reduce.engine import DEFAULT_BLOCK_ITEMS, REDUCE_PLANES, run_reduction
from repro.reduce.ops import (
    DotOp,
    MeanOp,
    Norm2Op,
    ReduceOp,
    SumOp,
    VarOp,
    get_op,
    kernel_supports,
    op_names,
    register_op,
)

__all__ = [
    "run_reduction",
    "REDUCE_PLANES",
    "ReduceOp",
    "SumOp",
    "DotOp",
    "Norm2Op",
    "MeanOp",
    "VarOp",
    "register_op",
    "get_op",
    "op_names",
    "kernel_supports",
    "sum",
    "dot",
    "norm2",
    "mean",
    "var",
]


def sum(  # noqa: A001 - deliberate: ``reduce.sum`` mirrors the op name
    values,
    *,
    plane: str = "serial",
    kernel: str = "sparse",
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    workers: int = 1,
    block_items: int = DEFAULT_BLOCK_ITEMS,
) -> float:
    """Correctly rounded sum (the identity op, for API symmetry)."""
    return run_reduction(
        plane, kernel, "sum", values,
        radix=radix, mode=mode, workers=workers, block_items=block_items,
    )


def dot(
    x,
    y,
    *,
    plane: str = "serial",
    kernel: str = "sparse",
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    workers: int = 1,
    block_items: int = DEFAULT_BLOCK_ITEMS,
) -> float:
    """Correctly rounded inner product ``fl(sum(x_i * y_i))``."""
    return run_reduction(
        plane, kernel, "dot", x, y,
        radix=radix, mode=mode, workers=workers, block_items=block_items,
    )


def norm2(
    values,
    *,
    plane: str = "serial",
    kernel: str = "sparse",
    radix: RadixConfig = DEFAULT_RADIX,
    workers: int = 1,
    block_items: int = DEFAULT_BLOCK_ITEMS,
) -> float:
    """Correctly rounded Euclidean norm ``fl(sqrt(sum(x_i^2)))``."""
    return run_reduction(
        plane, kernel, "norm2", values,
        radix=radix, mode="nearest", workers=workers, block_items=block_items,
    )


def mean(
    values,
    *,
    plane: str = "serial",
    kernel: str = "sparse",
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    workers: int = 1,
    block_items: int = DEFAULT_BLOCK_ITEMS,
) -> float:
    """Correctly rounded arithmetic mean (EmptyStreamError on no data)."""
    return run_reduction(
        plane, kernel, "mean", values,
        radix=radix, mode=mode, workers=workers, block_items=block_items,
    )


def var(
    values,
    *,
    ddof: int = 0,
    plane: str = "serial",
    kernel: str = "sparse",
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    workers: int = 1,
    block_items: int = DEFAULT_BLOCK_ITEMS,
) -> float:
    """Correctly rounded variance with the requested ``ddof``."""
    return run_reduction(
        plane, kernel, VarOp(ddof=ddof), values,
        radix=radix, mode=mode, workers=workers, block_items=block_items,
    )
