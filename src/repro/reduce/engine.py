"""Reduction engine: any op x any capable kernel x any execution plane.

:func:`run_reduction` is the reduction analogue of
:func:`repro.plan.run_plane` — one uniform entry point the CLI, the
planner and the cross-plane bit-identity matrix test all share. The
flow is the tentpole contract of this layer:

1. the op validates its inputs and polices the error-free expansion
   domain (:class:`~repro.errors.ReductionRangeError` outside it);
2. the op expands inputs into term streams
   (:meth:`~repro.reduce.ops.ReduceOp.expand`);
3. the chosen plane folds every term through the chosen kernel's
   existing exact machinery (for the serve/cluster planes the *raw*
   inputs ship on op-tagged wire frames and the expansion happens
   server-side, so the WAL and the shards see the same deterministic
   terms);
4. the op finishes — identity for rounded-sum ops, exact rational
   algebra plus one rounding for exact-fraction ops.

The result is bit-identical across every plane and every capable
kernel, because exact folds are order-independent and certified fast
paths prove the same correctly rounded sum the exact folds compute.
"""

from __future__ import annotations

import functools
from fractions import Fraction
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.kernels import get_kernel, kernel_names
from repro.reduce.ops import ReduceOp, get_op, kernel_supports

__all__ = ["run_reduction", "REDUCE_PLANES"]

#: Default fold granularity, shared with :mod:`repro.plan`.
DEFAULT_BLOCK_ITEMS = 1 << 17


def _chunks(arr: np.ndarray, block_items: int) -> Iterator[np.ndarray]:
    if arr.size == 0:
        yield arr
        return
    for start in range(0, arr.size, block_items):
        yield arr[start : start + block_items]


def _pair_chunks(
    x: np.ndarray, y: np.ndarray, block_items: int
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    if x.size == 0:
        yield x, y
        return
    for start in range(0, x.size, block_items):
        yield x[start : start + block_items], y[start : start + block_items]


# ---------------------------------------------------------------------------
# exact term-sum fractions, per local plane


def _fold_fraction(
    plane: str,
    kernel_name: str,
    terms: np.ndarray,
    *,
    radix: RadixConfig,
    workers: int,
    block_items: int,
) -> Fraction:
    """Exact Fraction of one term stream, folded on the given plane.

    Each branch runs the plane's real machinery (the same code
    :func:`repro.plan.run_plane` schedules) and reads the *partial*
    back instead of the rounded float, so exact-fraction ops exercise
    the identical fold paths the sum matrix certifies.
    """
    kernel = get_kernel(kernel_name, radix=radix)
    if plane == "serial":
        stream = kernel.new_stream()
        stream.add_array(terms)
        return stream.exact_fraction()
    if plane == "streaming":
        stream = kernel.new_stream()
        for chunk in _chunks(terms, block_items):
            kernel.fold_into(stream, chunk)
        return stream.exact_fraction()
    if plane == "mapreduce":
        from repro.mapreduce import parallel_sum
        from repro.mapreduce.sum_job import KernelReduceJob

        job = KernelReduceJob(radix=radix, mode="nearest", kernel_name=kernel_name)
        parallel_sum(
            terms, workers=workers, block_items=block_items, radix=radix, job=job
        )
        if job.partial_wire is None:
            return Fraction(0)
        return kernel.exact_fraction(kernel.from_wire(job.partial_wire))
    if plane == "extmem":
        from repro.extmem import BlockDevice, ExtArray, extmem_sum_scan

        block = max(8, min(block_items, 1 << 12))
        device = BlockDevice(block_size=block, memory=block * 64)
        source = ExtArray.from_numpy(device, "reduce-terms", terms)
        result = extmem_sum_scan(
            device, source, radix=radix, mode="nearest", kernel=kernel
        )
        if result.partial is None:
            return Fraction(0)
        return kernel.exact_fraction(kernel.from_wire(result.partial))
    if plane == "bsp":
        from repro.bsp import exact_allreduce_sum

        result = exact_allreduce_sum(
            np.array_split(terms, max(2, workers)),
            radix=radix,
            mode="nearest",
            kernel=kernel,
        )
        if result.partial is None:
            return Fraction(0)
        return kernel.exact_fraction(kernel.from_wire(result.partial))
    if plane == "pram":
        from repro.pram import pram_exact_sum

        result = pram_exact_sum(terms, radix=radix, mode="nearest", kernel=kernel)
        if result.partial is None:
            return Fraction(0)
        return kernel.exact_fraction(kernel.from_wire(result.partial))
    raise ValueError(f"plane {plane!r} has no local exact fold")


def _run_local(
    plane: str,
    kernel_name: str,
    op: ReduceOp,
    x: np.ndarray,
    y: Optional[np.ndarray],
    *,
    radix: RadixConfig,
    mode: str,
    workers: int,
    block_items: int,
) -> float:
    terms = op.expand(x, y)
    count = int(x.size)
    if not op.needs_exact:
        from repro.plan import run_plane

        value = run_plane(
            plane,
            kernel_name,
            terms[0],
            radix=radix,
            mode=mode,
            workers=workers,
            block_items=block_items,
        )
        return op.finish_rounded(value, count, mode)
    fracs = [
        _fold_fraction(
            plane,
            kernel_name,
            t,
            radix=radix,
            workers=workers,
            block_items=block_items,
        )
        for t in terms
    ]
    return op.finish_exact(fracs, count, mode)


# ---------------------------------------------------------------------------
# wire planes: raw inputs ship on op-tagged frames, expansion server-side


def _run_serve(
    kernel_name: str,
    op: ReduceOp,
    x: np.ndarray,
    y: Optional[np.ndarray],
    *,
    radix: RadixConfig,
    mode: str,
    workers: int,
    block_items: int,
) -> float:
    import asyncio

    from repro.serve import InProcessClient, ReproService, ServeConfig

    async def run() -> float:
        config = ServeConfig(shards=max(1, workers), kernel=kernel_name)
        async with ReproService(config, radix=radix) as service:
            client = InProcessClient(service)
            name = "reduce"
            if op.name == "sum":
                for chunk in _chunks(x, block_items):
                    await client.add_array(name, chunk)
                return await client.value(name, mode=mode)
            if op.name == "dot":
                for xs, ys in _pair_chunks(x, y, block_items):
                    await client.add_pairs(name, xs, ys)
                return await client.dot(name, mode=mode)
            if op.name == "norm2":
                for chunk in _chunks(x, block_items):
                    await client.add_squares(name, chunk)
                return await client.norm2(name)
            if op.name in ("mean", "var"):
                for chunk in _chunks(x, block_items):
                    await client.add_observations(name, chunk)
                ddof = getattr(op, "ddof", 0)
                stats = await client.moments(name, ddof=ddof, mode=mode)
                return stats["mean" if op.name == "mean" else "variance"]
            raise ValueError(f"op {op.name!r} has no serve route")

    return asyncio.run(run())


def _run_cluster(
    kernel_name: str,
    op: ReduceOp,
    x: np.ndarray,
    y: Optional[np.ndarray],
    *,
    radix: RadixConfig,
    mode: str,
    workers: int,
    block_items: int,
) -> float:
    import asyncio

    from repro.cluster import LocalCluster

    async def run() -> float:
        async with LocalCluster(
            nodes=max(2, workers), kernel=kernel_name, radix=radix, shards=1
        ) as lc:
            coord = lc.coordinator
            name = "reduce"
            if op.name == "sum":
                for chunk in _chunks(x, block_items):
                    await coord.scatter(name, chunk, chunk=block_items)
                return (await coord.gather_value(name, mode=mode))["value"]
            if op.name == "dot":
                for xs, ys in _pair_chunks(x, y, block_items):
                    await coord.scatter_reduce(
                        name, "pairs", xs, ys, chunk=block_items
                    )
                return (await coord.gather_value(name, mode=mode))["value"]
            if op.name == "norm2":
                for chunk in _chunks(x, block_items):
                    await coord.scatter_reduce(
                        name, "squares", chunk, chunk=block_items
                    )
                return (await coord.gather_norm2(name))["value"]
            if op.name in ("mean", "var"):
                for chunk in _chunks(x, block_items):
                    await coord.scatter_reduce(
                        name, "observations", chunk, chunk=block_items
                    )
                ddof = getattr(op, "ddof", 0)
                stats = await coord.gather_moments(name, ddof=ddof, mode=mode)
                return stats["mean" if op.name == "mean" else "variance"]
            raise ValueError(f"op {op.name!r} has no cluster route")

    return asyncio.run(run())


#: Every plane a reduction can run on — the same eight names as
#: :data:`repro.plan.PLANES`, so the matrix test walks one key set.
REDUCE_PLANES: Dict[str, object] = {
    "serial": functools.partial(_run_local, "serial"),
    "streaming": functools.partial(_run_local, "streaming"),
    "serve": _run_serve,
    "cluster": _run_cluster,
    "mapreduce": functools.partial(_run_local, "mapreduce"),
    "extmem": functools.partial(_run_local, "extmem"),
    "bsp": functools.partial(_run_local, "bsp"),
    "pram": functools.partial(_run_local, "pram"),
}


def run_reduction(
    plane: str,
    kernel_name: str,
    op: Union[str, ReduceOp],
    x,
    y=None,
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    workers: int = 1,
    block_items: int = DEFAULT_BLOCK_ITEMS,
) -> float:
    """Run one reduction op on one named plane with one named kernel.

    Returns the correctly rounded value of the true mathematical
    quantity for the given float inputs — the same bits whichever
    plane/kernel pair the caller (or the planner) picks.

    Raises:
        ValueError: unknown plane/kernel/op, or a kernel that cannot
            host the op (exact-fraction finishes need ``exact`` kernels).
        ReductionRangeError: inputs outside the op's error-free
            expansion domain.
        EmptyStreamError: ``mean``/``var`` finishes on too few
            observations (sums and norms of nothing are simply 0.0).
    """
    if isinstance(op, str):
        op = get_op(op)
    if plane not in REDUCE_PLANES:
        raise ValueError(
            f"unknown plane {plane!r}; expected one of {sorted(REDUCE_PLANES)}"
        )
    if kernel_name not in kernel_names():
        raise ValueError(
            f"unknown kernel {kernel_name!r}; expected one of {list(kernel_names())}"
        )
    kernel = get_kernel(kernel_name, radix=radix)
    if not kernel_supports(op, kernel):
        raise ValueError(
            f"kernel {kernel_name!r} cannot host op {op.name!r}: the finish "
            f"needs the exact term-sum fraction and the kernel's partials "
            f"are speculative/lossy (exact=False)"
        )
    xa, ya = op.validate(x, y)
    op.check_domain(xa, ya)
    runner = REDUCE_PLANES[plane]
    return runner(
        kernel_name,
        op,
        xa,
        ya,
        radix=radix,
        mode=mode,
        workers=workers,
        block_items=block_items,
    )
