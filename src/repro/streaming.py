"""Streaming exact aggregation: running sums, sliding windows, cumsums.

Superaccumulator addition is exact and signed, so *removal* is just
adding the negation — which makes exact sliding windows and running
statistics trivial to build and impossible to build from compensated
methods (whose corrections don't subtract). Everything here maintains
exact internal state and rounds only at query time, so query results
are correctly rounded and independent of the update order that
produced the state.

Streams accept ``method="adaptive"`` to route reads through the
condition-adaptive tier ladder (:mod:`repro.adaptive`): folds stay
exact — a stateful stream can never un-fold a speculated value — but
queries on still-pending data take the certified Tier-0/1 fast path,
and every tier decision lands in the stream's
:attr:`~ExactRunningSum.tier_counters` telemetry.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, Optional

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.errors import EmptyStreamError, NonFiniteInputError
from repro.stats import round_fraction
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["ExactRunningSum", "SlidingWindowSum", "RunningStats", "exact_cumsum"]

#: Accepted fold-routing methods for streaming state.
_STREAM_METHODS = ("exact", "adaptive")


#: Deferred-fold buffer cap (elements). Batches are staged here and
#: folded in one bulk ``from_floats`` + single merge instead of one
#: merge per call — the same microbatching win the serving plane gets,
#: now built into the stream itself.
_PENDING_CAP = 1 << 16


def _check_stream_method(method: str) -> str:
    if method not in _STREAM_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {_STREAM_METHODS}"
        )
    return method


class ExactRunningSum:
    """Append-only exact running total with O(sigma) state.

    ``add``/``add_array`` fold values in exactly; ``value()`` rounds the
    exact total on demand. ``merge`` combines two independent streams
    (the MapReduce/allreduce building block at the user API level).

    Updates are staged in a pending buffer and folded lazily — one bulk
    accumulator build + one merge per ~``2**16`` staged elements, or on
    any read (``value``/``mean``/``merge``/``exact_state``/
    ``to_bytes``). Validation and ``count`` stay eager, so error
    behaviour and observable state are unchanged; only the fold cost
    moves. Exactness is unaffected: superaccumulator addition is
    associative, so fold timing can never change a single bit.

    With ``method="adaptive"``, reads over purely pending data go
    through the certified tier ladder (bit-identical, often much
    cheaper), bulk folds are tallied, and :attr:`tier_counters` exposes
    the decisions.
    """

    def __init__(
        self, radix: RadixConfig = DEFAULT_RADIX, *, method: str = "exact"
    ) -> None:
        self.method = _check_stream_method(method)
        self._acc = SparseSuperaccumulator.zero(radix)
        self.count = 0
        self._pending_scalars: list = []
        self._pending_arrays: list = []
        self._pending_items = 0
        self._counters: Optional[object] = None
        if self.method == "adaptive":
            from repro.adaptive import TierCounters

            self._counters = TierCounters()

    @property
    def tier_counters(self):
        """Tier telemetry (``None`` unless ``method="adaptive"``)."""
        return self._counters

    def add(self, x: float) -> None:
        """Fold one value in exactly."""
        x = float(x)
        if not math.isfinite(x):
            raise NonFiniteInputError(f"cannot add non-finite value {x!r}")
        self._pending_scalars.append(x)
        self._pending_items += 1
        self.count += 1
        if self._pending_items >= _PENDING_CAP:
            self._flush()

    def add_array(self, values: Iterable[float]) -> None:
        """Fold a batch in exactly (vectorized)."""
        arr = ensure_float64_array(values)
        check_finite_array(arr)
        if arr.size:
            if arr is values:
                # The stage holds a reference until the next flush; a
                # caller-owned buffer must be snapshotted so later
                # mutation cannot corrupt the deferred fold.
                arr = arr.copy()
            self._pending_arrays.append(arr)
            self._pending_items += int(arr.size)
            self.count += int(arr.size)
            if self._pending_items >= _PENDING_CAP:
                self._flush()

    def _pending_merged(self) -> Optional[np.ndarray]:
        if self._pending_items == 0:
            return None
        parts = list(self._pending_arrays)
        if self._pending_scalars:
            parts.append(np.array(self._pending_scalars, dtype=np.float64))
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def _flush(self) -> None:
        merged = self._pending_merged()
        if merged is None:
            return
        self._acc = self._acc.add(
            SparseSuperaccumulator.from_floats(merged, self._acc.radix)
        )
        self._pending_scalars = []
        self._pending_arrays = []
        self._pending_items = 0
        if self._counters is not None:
            self._counters.record_bulk_fold()

    def merge(self, other: "ExactRunningSum") -> None:
        """Absorb another stream's exact state."""
        self._flush()
        other._flush()
        self._acc = self._acc.add(other._acc)
        self.count += other.count

    def absorb_exact(self, acc: SparseSuperaccumulator, count: int) -> None:
        """Fold an already-exact accumulator (plus its observation count).

        The bulk-ingest seam: a caller that built an exact partial by a
        faster route (the vectorized binned deposit on the serve-shard
        path) lands it here without a second fold. Exactness makes this
        safe — superaccumulator addition is associative and exact, so
        the stream's readable state is bit-identical to having folded
        the original values directly.
        """
        if count < 0:
            raise ValueError(f"absorbed count must be >= 0, got {count}")
        if acc.radix != self._acc.radix:
            raise ValueError(
                f"radix mismatch: partial w={acc.radix.w}, "
                f"stream w={self._acc.radix.w}"
            )
        self._acc = self._acc.add(acc)
        self.count += int(count)

    def value(self, mode: str = "nearest") -> float:
        """Correctly rounded current total (0.0 for an empty stream)."""
        if (
            self._counters is not None
            and mode == "nearest"
            and self._acc.is_zero()
        ):
            merged = self._pending_merged()
            if merged is not None:
                # Certified read over still-pending data: bit-identical
                # to flush-then-round (the ladder proves it), usually a
                # single cascade pass instead of an accumulator build.
                # Pending stays staged so later adds keep batching.
                from repro.adaptive import adaptive_sum_detail

                result = adaptive_sum_detail(merged, radix=self._acc.radix)
                self._counters.record(result)
                return result.value
        self._flush()
        return self._acc.to_float(mode)

    def mean(self) -> float:
        """Correctly rounded mean of the stream so far.

        Raises:
            EmptyStreamError: if nothing has been added yet.
        """
        if self.count == 0:
            raise EmptyStreamError("mean of empty running sum")
        return round_fraction(self.exact_fraction() / self.count)

    def exact_fraction(self):
        """The exact total as a :class:`fractions.Fraction`."""
        self._flush()
        return self._acc.to_fraction()

    def exact_state(self) -> SparseSuperaccumulator:
        """The exact accumulator (copy) for checkpointing/transport."""
        self._flush()
        return self._acc.copy()

    def to_bytes(self) -> bytes:
        """Serialize exact state **and** count (service snapshot format).

        The ``ERSM`` frame (:func:`repro.codec.encode_running`): magic +
        int64 count, then the embedded ``SSUP`` accumulator frame — one
        wire format shared by service snapshots, streaming checkpoints,
        and the running-sum kernel.
        """
        self._flush()
        from repro import codec

        return codec.encode_running(self.count, self._acc)

    @classmethod
    def from_bytes(
        cls,
        payload: bytes,
        radix: RadixConfig = DEFAULT_RADIX,
        *,
        method: str = "exact",
    ) -> "ExactRunningSum":
        """Inverse of :meth:`to_bytes`.

        Raises:
            CodecError: on malformed payloads (wrong magic, negative
                count, or a corrupt embedded accumulator); snapshots
                cross process boundaries, so corruption surfaces as a
                clean ``ValueError`` subclass.
            ValueError: on a radix mismatch with the requesting caller.
        """
        from repro import codec

        count, acc = codec.decode_running(payload)
        if acc.radix != radix:
            raise ValueError(
                f"radix mismatch: payload w={acc.radix.w}, expected w={radix.w}"
            )
        out = cls(radix, method=method)
        out._acc = acc
        out.count = int(count)
        return out


class SlidingWindowSum:
    """Exact sum over the last ``window`` values of a stream.

    Eviction subtracts the departing value exactly (adds its negation),
    so the window total never accumulates drift — the failure mode of
    the classic float ring-buffer subtract-on-evict, which decays after
    millions of updates.
    """

    def __init__(self, window: int, radix: RadixConfig = DEFAULT_RADIX) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = int(window)
        self._buf: Deque[float] = deque()
        self._acc = SparseSuperaccumulator.zero(radix)

    def push(self, x: float) -> float:
        """Insert ``x``, evict if full; return the rounded window sum."""
        x = float(x)
        self._acc = self._acc.add_float(x)
        self._buf.append(x)
        if len(self._buf) > self.window:
            gone = self._buf.popleft()
            self._acc = self._acc.add_float(-gone)
        return self._acc.to_float()

    def __len__(self) -> int:
        return len(self._buf)

    def value(self, mode: str = "nearest") -> float:
        """Correctly rounded sum of the current window contents."""
        return self._acc.to_float(mode)


class RunningStats:
    """Exact streaming count/mean/variance (a reproducible Welford).

    Keeps the exact sum and the exact sum of squares so ``mean()`` and
    ``variance()`` are correctly rounded at any point in the stream;
    ``merge`` combines shards exactly, so distributed statistics come
    out bit-identical to a serial pass.

    The square path is the same expansion ingest every other plane
    uses: in-band magnitudes go through the vectorized TwoSquare EFT
    (:func:`repro.core.eft.two_square_vec` — the ``norm2``/``var``
    reduction ops' expansion, folded directly as float terms), and only
    magnitudes outside the error-free band
    (:func:`repro.reduce.ops.square_domain_mask`) fall back to exact
    integer squaring. Both routes land the identical exact rational in
    the accumulator, so the rounded reads cannot tell them apart.

    The value sum is held as an :class:`ExactRunningSum`, so
    ``method="adaptive"`` gives ``sum()`` the same certified read fast
    path and exposes :attr:`tier_counters`.
    """

    def __init__(
        self, radix: RadixConfig = DEFAULT_RADIX, *, method: str = "exact"
    ) -> None:
        self._radix = radix
        self.method = _check_stream_method(method)
        self._n = 0
        self._sum = ExactRunningSum(radix, method=method)
        self._sum_sq = SparseSuperaccumulator.zero(radix)

    @property
    def tier_counters(self):
        """Tier telemetry (``None`` unless ``method="adaptive"``)."""
        return self._sum.tier_counters

    def add_array(self, values: Iterable[float]) -> None:
        """Fold a batch in exactly."""
        arr = ensure_float64_array(values)
        check_finite_array(arr)
        if arr.size == 0:
            return
        self._n += int(arr.size)
        self._sum.add_array(arr)
        from repro.reduce.ops import square_domain_mask

        safe = square_domain_mask(arr)
        in_band = arr if safe.all() else arr[safe]
        if in_band.size:
            # Error-free squares: x^2 = p + e exactly. The terms are
            # plain floats, so they fold through the ordinary bulk
            # deposit — no rational arithmetic on the hot path.
            from repro.core.eft import two_square_vec

            p, e = two_square_vec(in_band)
            self._sum_sq = self._sum_sq.add(
                SparseSuperaccumulator.from_floats(
                    np.concatenate([p, e]), self._radix
                )
            )
        if not safe.all():
            # Out-of-band magnitudes (square would under/overflow):
            # exact integer squaring, folded as one dyadic rational.
            from fractions import Fraction

            from repro.core.apfloat import APFloat, split_apfloat
            from repro.core.fpinfo import decompose

            sq = Fraction(0)
            for v in arr[~safe]:
                m, ex = decompose(float(v))
                sq += Fraction(m * m) * Fraction(2) ** (2 * ex)
            num, den = sq.numerator, sq.denominator
            shift = -(den.bit_length() - 1)
            pairs = split_apfloat(APFloat(num, shift), self._radix)
            if pairs:
                idx = np.array([j for j, _ in pairs], dtype=np.int64)
                dig = np.array([d for _, d in pairs], dtype=np.int64)
                self._sum_sq = self._sum_sq.add(
                    SparseSuperaccumulator(self._radix, idx, dig, _validated=True)
                )

    def merge(self, other: "RunningStats") -> None:
        """Absorb another shard's exact state."""
        self._n += other._n
        self._sum.merge(other._sum)
        self._sum_sq = self._sum_sq.add(other._sum_sq)

    @property
    def count(self) -> int:
        return self._n

    def sum(self, mode: str = "nearest") -> float:
        """Correctly rounded running sum."""
        return self._sum.value(mode)

    def mean(self) -> float:
        """Correctly rounded running mean.

        Raises:
            EmptyStreamError: if nothing has been added yet.
        """
        if self._n == 0:
            raise EmptyStreamError("mean of empty stream")
        return round_fraction(self._sum.exact_fraction() / self._n)

    def variance(self, ddof: int = 0) -> float:
        """Correctly rounded running variance.

        Raises:
            EmptyStreamError: with fewer than ``ddof + 1`` observations.
        """
        if self._n - ddof <= 0:
            raise EmptyStreamError("need more observations than ddof")
        s = self._sum.exact_fraction()
        ss = self._sum_sq.to_fraction()
        return round_fraction((ss - s * s / self._n) / (self._n - ddof))


def exact_cumsum(
    values: Iterable[float],
    *,
    mode: str = "nearest",
    radix: RadixConfig = DEFAULT_RADIX,
) -> np.ndarray:
    """Prefix sums with **every** prefix correctly rounded.

    ``out[i]`` is the correctly rounded value of ``x[0] + ... + x[i]``
    exactly — unlike ``np.cumsum``, whose later prefixes carry the
    accumulated rounding of earlier ones. O(n * sigma) work.
    """
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    out = np.empty(arr.size, dtype=np.float64)
    acc = SparseSuperaccumulator.zero(radix)
    for i, x in enumerate(arr):
        acc = acc.add_float(float(x))
        out[i] = acc.to_float(mode)
    return out
