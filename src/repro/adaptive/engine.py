"""The condition-adaptive tier ladder (Tier 0 → Tier 1 → Tier 2).

Theorem 4 of the paper says exact-summation work can scale with
``log C(X)`` rather than the worst case; this module is that promise as
an engineering artifact. One entry point — :func:`adaptive_sum` /
:class:`AdaptiveFolder` — dispatches every summation through a ladder
whose tiers all return the **same bits** (the correctly rounded exact
sum) and differ only in how much work they spend proving it:

* **Tier 0** — the certified cascade (:mod:`repro.adaptive.cascade`):
  ~3 vectorized passes, accepts whenever the deterministic error bound
  fits inside the rounding cell. Covers condition numbers up to roughly
  ``u**-1 / poly(log n)`` — the overwhelmingly common case.
* **Tier 1** — γ-truncated sparse superaccumulators with doubling ``r``
  (§4 of the paper): per-block *full* sparse accumulators are built
  once, truncated **views** are folded at ``O(r)`` per merge, and the
  result is accepted only if the exact truncation-mass bound
  (``TruncatedSparseSuperaccumulator.truncation_mass_bound``) proves
  the candidate lies strictly inside its rounding cell. This is the
  paper's stopping condition strengthened from faithful to *correct*
  rounding, so Tier 1 is still bit-identical to the exact path.
* **Tier 2** — the full exact path. When Tier 1 already built the
  per-block accumulators, escalation just merges them (the tree was
  shared, so an adversarial input pays ~2% over a direct exact sum).
  On a cold start the fold is the binned kernel's vectorized
  exponent-bin deposit (:mod:`repro.kernels.binned`) — and on
  multi-core hosts large inputs run it thread-parallel, each worker
  driving GIL-releasing bincount kernels into a private bin array,
  merged carry-free at the end.

Counters (:class:`TierCounters`) record every decision — tier hits,
escalations, certificate margins — and are threaded through
``ServiceMetrics`` and MapReduce ``JobResult`` by the callers.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, List, Optional

import numpy as np

from repro.adaptive.cascade import certified_cascade_sum
from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator
from repro.core.truncated import TruncatedSparseSuperaccumulator
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = [
    "AdaptiveConfig",
    "AdaptiveResult",
    "AdaptiveFolder",
    "TierCounters",
    "adaptive_sum",
    "adaptive_sum_detail",
]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs for the tier ladder.

    Attributes:
        block_items: leaf block size for the Tier-1/2 accumulator
            builds (shared between the tiers).
        initial_r: starting truncation width for Tier 1.
        r_doublings: how many times Tier 1 doubles ``r`` after the
            first attempt before escalating (so ``1`` tries ``r`` and
            ``2r``); negative disables Tier 1 entirely.
        enable_tier0: gate for the certified cascade.
        parallel_threshold: minimum element count before Tier 2
            considers the thread pool.
        max_workers: thread-pool width cap for Tier 2 (effective width
            also respects ``os.cpu_count()``; single-core hosts always
            run sequentially).
    """

    block_items: int = 1 << 20
    initial_r: int = 16
    r_doublings: int = 1
    enable_tier0: bool = True
    parallel_threshold: int = 1 << 21
    max_workers: int = 4


@dataclass(frozen=True)
class AdaptiveResult:
    """One summation's outcome: the value plus the decision trail.

    Attributes:
        value: the correctly rounded exact sum (all tiers agree).
        tier: which tier produced it (0, 1, or 2).
        n: number of summands.
        escalations: tiers/attempts tried and rejected before success
            (Tier-0 failure counts 1; each failed Tier-1 ``r`` counts 1).
        margin_bits: certificate headroom in doublings (Tier 0/1);
            ``inf`` for exact certificates, ``nan`` for Tier 2 (no
            certificate — the result is exact by construction).
        r_used: Tier-1 truncation width that certified, else ``None``.
    """

    value: float
    tier: int
    n: int
    escalations: int = 0
    margin_bits: float = math.nan
    r_used: Optional[int] = None


@dataclass
class TierCounters:
    """Mutable tally of tier decisions (threaded into service metrics).

    ``margin_min``/``margin_last`` track *finite* certificate margins
    only — an exact certificate (``inf`` margin) carries no tuning
    information about how close the ladder runs to escalation.
    """

    tier0_hits: int = 0
    tier1_hits: int = 0
    tier2_folds: int = 0
    escalations: int = 0
    margin_min: float = math.inf
    margin_last: float = math.nan
    _seen_margin: bool = field(default=False, repr=False)

    def record(self, result: AdaptiveResult) -> None:
        if result.tier == 0:
            self.tier0_hits += 1
        elif result.tier == 1:
            self.tier1_hits += 1
        else:
            self.tier2_folds += 1
        self.escalations += result.escalations
        if math.isfinite(result.margin_bits):
            self.margin_last = result.margin_bits
            if result.margin_bits < self.margin_min:
                self.margin_min = result.margin_bits
            self._seen_margin = True

    def record_bulk_fold(self) -> None:
        """Count an unconditional exact fold (stateful-stream path)."""
        self.tier2_folds += 1

    def as_dict(self) -> dict:
        return {
            "tier0_hits": self.tier0_hits,
            "tier1_hits": self.tier1_hits,
            "tier2_folds": self.tier2_folds,
            "escalations": self.escalations,
            "certificate_margin_min_bits": (
                self.margin_min if self._seen_margin else None
            ),
            "certificate_margin_last_bits": (
                self.margin_last if self._seen_margin else None
            ),
        }


def _tier1_certify(t: TruncatedSparseSuperaccumulator) -> Optional[float]:
    """Accept a truncated fold iff its value is provably correctly rounded.

    Returns the rounded value on success, ``None`` to escalate. The
    check is exact: with retained value ``S`` (a Fraction), truncation
    mass bound ``B``, and candidate ``y = round(S)``, the true sum lies
    in ``(S - B, S + B)``; if that interval sits strictly inside ``y``'s
    open rounding cell (between the midpoints with both neighbours),
    every candidate true sum — midpoint ties excluded by strictness —
    rounds to ``y``.
    """
    y = t.to_float("nearest")
    if not math.isfinite(y):
        return None
    bound = t.truncation_mass_bound()
    if bound == 0:
        return y  # nothing was ever dropped: the fold was exact
    lo = math.nextafter(y, -math.inf)
    hi = math.nextafter(y, math.inf)
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return None
    retained = t.acc.to_fraction()
    yf = Fraction(y)
    if (yf + Fraction(lo)) / 2 < retained - bound and retained + bound < (
        yf + Fraction(hi)
    ) / 2:
        return y
    return None


def _tier1_margin_bits(t: TruncatedSparseSuperaccumulator, y: float) -> float:
    bound = t.truncation_mass_bound()
    if bound == 0:
        return math.inf
    half_cell = Fraction(math.ulp(y)) / 2
    # reprolint: disable-next-line=FP004 -- diagnostic margin only; log2 absorbs the rounding slack
    return math.log2(float(half_cell / bound)) if half_cell > bound else 0.0


def _build_blocks(
    arr: np.ndarray, radix: RadixConfig, block_items: int
) -> List[SparseSuperaccumulator]:
    return [
        SparseSuperaccumulator.from_floats(arr[i : i + block_items], radix)
        for i in range(0, arr.size, max(1, block_items))
    ]


def _tier2_threaded(
    arr: np.ndarray, radix: RadixConfig, workers: int, mode: str
) -> float:
    """Cold-start Tier 2 on multi-core hosts: thread-parallel fold.

    Each worker drives the binned kernel's exponent-bin deposit — NumPy
    bincount/bit-op kernels that release the GIL — into a private
    :class:`~repro.kernels.binned.BinnedPartial`; the per-thread bin
    arrays then merge carry-free (detfp's ``if64Sum`` shape). Real
    parallel speedup without pickling a single byte, and bit-identical
    to the serial exact path because every partial is exact.
    """
    from repro.kernels.binned import BinnedPartial

    chunks = np.array_split(arr, workers)

    def fold(chunk: np.ndarray) -> BinnedPartial:
        acc = BinnedPartial(radix)
        if chunk.size:
            acc.deposit(np.ascontiguousarray(chunk))
        return acc

    with ThreadPoolExecutor(max_workers=workers) as pool:
        partials = list(pool.map(fold, chunks))
    total = partials[0]
    for part in partials[1:]:
        total = total.merge(part)
    return total.to_float(mode)


def adaptive_sum_detail(
    values: Iterable[float],
    *,
    mode: str = "nearest",
    radix: RadixConfig = DEFAULT_RADIX,
    config: AdaptiveConfig = AdaptiveConfig(),
) -> AdaptiveResult:
    """Run the full ladder; return value plus the decision trail.

    Tiers 0 and 1 certify *correct (nearest) rounding* only, so any
    other ``mode`` goes straight to the exact path — same bits as
    ``exact_sum(..., mode=mode)`` either way.
    """
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    n = int(arr.size)
    escalations = 0

    if mode == "nearest" and config.enable_tier0:
        cert = certified_cascade_sum(arr)
        if cert.certified:
            return AdaptiveResult(cert.value, 0, n, escalations, cert.margin_bits)
        escalations += 1

    if mode != "nearest" or config.r_doublings < 0:
        # No certifying tier can run: go straight to the exact path,
        # thread-parallel on multi-core hosts for large inputs.
        return AdaptiveResult(_tier2_cold(arr, radix, mode, config), 2, n, escalations)

    blocks = _build_blocks(arr, radix, config.block_items)

    # Tier 1 pays off only when there are multiple blocks to fold: with
    # one block the full accumulator already exists and rounding it IS
    # Tier 2, at zero extra cost.
    if len(blocks) > 1:
        r = config.initial_r
        for _ in range(config.r_doublings + 1):
            total = TruncatedSparseSuperaccumulator(r, radix, acc=blocks[0])
            for blk in blocks[1:]:
                total = total.add(TruncatedSparseSuperaccumulator(r, radix, acc=blk))
            y = _tier1_certify(total)
            if y is not None:
                return AdaptiveResult(
                    y, 1, n, escalations, _tier1_margin_bits(total, y), r
                )
            escalations += 1
            r *= 2

    total_acc = SparseSuperaccumulator.sum_many(blocks, radix)
    return AdaptiveResult(total_acc.to_float(mode), 2, n, escalations)


def _tier2_cold(
    arr: np.ndarray, radix: RadixConfig, mode: str, config: AdaptiveConfig
) -> float:
    workers = min(config.max_workers, os.cpu_count() or 1)
    if workers > 1 and arr.size >= config.parallel_threshold:
        return _tier2_threaded(arr, radix, workers, mode)
    if radix.supports_vectorized:
        # The exponent-bin fold is the fastest exact path (~5x the
        # sparse bulk fold); exact partials, so the bits cannot differ.
        from repro.kernels.binned import BinnedPartial

        acc = BinnedPartial(radix)
        acc.deposit(arr)
        return acc.to_float(mode)
    return SparseSuperaccumulator.from_floats(arr, radix).to_float(mode)


def adaptive_sum(
    values: Iterable[float],
    *,
    mode: str = "nearest",
    radix: RadixConfig = DEFAULT_RADIX,
    config: AdaptiveConfig = AdaptiveConfig(),
    counters: Optional[TierCounters] = None,
) -> float:
    """Correctly rounded exact sum via the cheapest tier that can prove it.

    Bit-identical to ``exact_sum(values, method="sparse", mode=mode)``
    on every input; ~an order of magnitude faster when the input's
    condition number lets a cheap tier certify. Pass ``counters`` to
    accumulate tier-decision telemetry across calls.
    """
    result = adaptive_sum_detail(values, mode=mode, radix=radix, config=config)
    if counters is not None:
        counters.record(result)
    return result.value


class AdaptiveFolder:
    """Stateful front-end: one ladder + one set of counters, many calls.

    The serving plane and MapReduce driver each hold one folder so tier
    telemetry aggregates across requests. Thread-safety note: counter
    updates happen in the caller's thread; shard writers each own their
    folder or route through the service-level one from the event loop.
    """

    __slots__ = ("config", "counters", "radix")

    def __init__(
        self,
        config: AdaptiveConfig = AdaptiveConfig(),
        radix: RadixConfig = DEFAULT_RADIX,
        counters: Optional[TierCounters] = None,
    ) -> None:
        self.config = config
        self.radix = radix
        # An injected TierCounters lets several folders (or a folder
        # plus a metrics object) share one tally.
        self.counters = counters if counters is not None else TierCounters()

    def sum(self, values: Iterable[float], *, mode: str = "nearest") -> AdaptiveResult:
        """Full-ladder sum; records the decision and returns the trail."""
        result = adaptive_sum_detail(
            values, mode=mode, radix=self.radix, config=self.config
        )
        self.counters.record(result)
        return result

    def fold_into(self, running, values) -> int:
        """Exact bulk fold into a stateful stream (serve-shard path).

        Stateful streams must stay exact — a certified *rounded* float
        cannot be folded into an exact accumulator without breaking the
        service's bit-exactness guarantee — so this path is always an
        exact Tier-2 bulk add; it is counted as such.

        Returns the number of elements folded.
        """
        arr = ensure_float64_array(values)
        running.add_array(arr)
        self.counters.record_bulk_fold()
        return int(arr.size)

    def snapshot(self) -> dict:
        """Counter state as a JSON-safe dict (metrics surface)."""
        return self.counters.as_dict()
