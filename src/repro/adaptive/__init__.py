"""Condition-adaptive tiered summation (Theorem 4 as a wall-clock win).

Public surface:

* :func:`adaptive_sum` / :func:`adaptive_sum_detail` — one-shot sums
  through the tier ladder, bit-identical to ``exact_sum``.
* :class:`AdaptiveFolder` — stateful front-end with tier telemetry,
  used by the serving plane and the MapReduce driver.
* :func:`certified_cascade_sum` — the Tier-0 primitive, exposed for
  callers (e.g. MapReduce combiners) that want the certificate itself.
"""

from repro.adaptive.cascade import CascadeCertificate, certified_cascade_sum
from repro.adaptive.engine import (
    AdaptiveConfig,
    AdaptiveFolder,
    AdaptiveResult,
    TierCounters,
    adaptive_sum,
    adaptive_sum_detail,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveFolder",
    "AdaptiveResult",
    "CascadeCertificate",
    "TierCounters",
    "adaptive_sum",
    "adaptive_sum_detail",
    "certified_cascade_sum",
]
