"""Tier 0 of the adaptive engine: the certified cascade (fast path).

A two-level vectorized TwoSum tree computes, in a handful of NumPy
passes over the data, a candidate sum and a **deterministic a priori
error certificate** in the spirit of Hallman & Ipsen's probabilistic /
deterministic summation bounds and Ogita-Rump-Oishi cascaded
distillation:

1. ``main, errs = twosum_tree(x)`` — ``main`` is a pairwise float sum
   (halving tree) and ``errs`` the exact per-node rounding errors, so
   ``sum(x) = main + sum(errs)`` **exactly** (TwoSum is an error-free
   transformation).
2. The same tree runs once more over the (non-zero) error terms:
   ``e, errs2 = twosum_tree(errs)``, so ``sum(errs) = e + sum(errs2)``
   exactly. Only the *second-level* errors — magnitude ``O(u^2)``
   relative to the input mass — remain uncaptured.
3. ``res, r = TwoSum(main, e)`` (exact, scalar). Now

       sum(x) = res + r + sum(errs2),   |sum(errs2)| <= beta,

   with ``beta = sum|errs2|`` inflated by the relative gamma of its own
   float accumulation (``k`` covers NumPy's blocked pairwise reduction
   depth), so the true sum lies in ``[res + r - beta, res + r + beta]``
   with ``r`` known **exactly**.
4. The certificate asks whether that whole interval lies strictly
   inside the open rounding cell of ``res`` — above the midpoint with
   its predecessor, below the midpoint with its successor. The
   comparison runs in exact ``Fraction`` arithmetic (three scalars;
   nanoseconds next to the array passes), so there is no slack-for-
   rounding fudge anywhere: if the test passes, every real number the
   true sum could be rounds (to nearest) to ``res``, ties excluded by
   strictness — ``res`` **is** the correctly rounded exact sum,
   bit-identical to the superaccumulator's answer, at ~6 passes over
   the data instead of ~30.

Work scales with conditioning exactly as Theorem 4 promises: ``beta``
is second-order (``~u^2 * sum|x|``), so the certificate's margin is
roughly ``log2(1/(C(X) * u^2 * polylog n))`` bits — inputs with
condition numbers up to ~``1/u`` certify here and never touch a
superaccumulator, while heavy cancellation fails fast (the tree is a
few percent of the exact path's cost) and escalates to Tier 1/2.

Intermediate overflow needs no special-casing: non-finite partials
poison ``res``/``beta`` and the certificate fails closed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Tuple

import numpy as np

__all__ = ["CascadeCertificate", "certified_cascade_sum"]

#: Unit roundoff of binary64.
_U = 2.0 ** -53

#: Extra accumulation depth charged to ``np.sum``'s blocked pairwise
#: reduction (128-element blocks folded with an 8-way unrolled inner
#: loop) on top of the ``log2`` recursion depth. 16 is conservative;
#: it only scales ``beta``'s relative inflation term (O(u)).
_NP_SUM_EXTRA_DEPTH = 16

#: One quantum of the subnormal range: absolute slack added to ``beta``
#: so a bound whose float computation underflowed to zero can never
#: understate a genuinely non-zero residual.
_SUBNORMAL_ULP = 5e-324


@dataclass(frozen=True)
class CascadeCertificate:
    """Outcome of one certified cascade pass.

    Attributes:
        value: the candidate sum (correctly rounded iff ``certified``).
        error_bound: rigorous upper bound on ``|value - exact sum|``
            (``|r| + beta``; 0.0 for exact results).
        certified: True iff the residual interval provably lies inside
            ``value``'s rounding cell — i.e. ``value`` is the correctly
            rounded exact sum.
        margin_bits: ``log2(gap / beta)`` where ``gap`` is the distance
            from the residual to the nearest rounding-cell boundary —
            how many doublings of the uncertified mass the certificate
            would survive. ``inf`` for exact results, ``-inf`` when the
            residual interval already straddles a boundary.
        n: number of summands.
        remainder: the exact TwoSum leftover ``r``: ``value + remainder``
            is within ``residual_bound`` of the exact sum, with both
            floats known exactly. Distributed reducers fold both and
            carry only ``residual_bound`` as uncertainty.
        residual_bound: rigorous bound ``beta`` on the mass the cascade
            did not capture (second-order; 0.0 when the transformation
            closed exactly).
    """

    value: float
    error_bound: float
    certified: bool
    margin_bits: float
    n: int
    remainder: float = 0.0
    residual_bound: float = 0.0


def _frac_log2(fr: Fraction) -> float:
    """``log2`` of a positive Fraction, safe for ratios beyond float range."""
    num, den = fr.numerator, fr.denominator
    shift = num.bit_length() - den.bit_length()
    if shift > 0:
        den <<= shift
    elif shift < 0:
        num <<= -shift
    return shift + math.log2(num / den)  # num/den now in [0.5, 2)


def _cascade(arr: np.ndarray, err_buf: np.ndarray) -> Tuple[float, int]:
    """Halving TwoSum tree: returns ``(root, error count in err_buf)``.

    Each level pairs the first half against the second half (contiguous
    slices — markedly faster than stride-2 gathers) and runs the
    branch-free Knuth TwoSum elementwise, writing the exact per-pair
    rounding errors into ``err_buf``. Error-free transformation:
    ``sum(arr) == root + sum(err_buf[:count])`` as real numbers. Level
    sizes halve, so ``count < arr.size`` always fits the buffer.
    """
    filled = 0
    cur = arr
    while cur.size > 1:
        h = cur.size >> 1
        a = cur[:h]
        b = cur[h : 2 * h]
        s = a + b
        bv = s - a
        e = err_buf[filled : filled + h]
        np.subtract(s, bv, out=e)  # virtual a' = s - bv
        np.subtract(a, e, out=e)  # a - a'
        np.subtract(b, bv, out=bv)  # reuse bv for b's residual
        e += bv  # err = (a - a') + (b - bv)
        filled += h
        if cur.size & 1:
            s = np.append(s, cur[2 * h])
        cur = s
    return float(cur[0]), filled


def certified_cascade_sum(arr: np.ndarray) -> CascadeCertificate:
    """Tier-0 pass: candidate sum + deterministic rounding certificate.

    Args:
        arr: finite float64 array (validation is the caller's job; the
            certificate itself fails closed on intermediate overflow).

    Returns:
        A :class:`CascadeCertificate`; ``certified=True`` guarantees
        ``value`` is the correctly rounded (nearest-even) exact sum.
    """
    n = int(arr.size)
    if n == 0:
        return CascadeCertificate(0.0, 0.0, True, math.inf, 0)
    if n == 1:
        # + 0.0 normalizes -0.0 like the superaccumulators do.
        return CascadeCertificate(float(arr[0]) + 0.0, 0.0, True, math.inf, 1)

    with np.errstate(over="ignore", invalid="ignore"):
        buf1 = np.empty(n, dtype=np.float64)
        main, m1 = _cascade(arr, buf1)
        errs = buf1[:m1]
        nz = int(np.count_nonzero(errs))
        if nz == 0:
            e = 0.0
            t2 = 0.0
            m2 = 0
        else:
            if nz < (m1 >> 1):
                errs = errs[errs != 0]  # compact when mostly exact pairs
            buf2 = np.empty(errs.size, dtype=np.float64)
            e, m2 = _cascade(errs, buf2)
            # reprolint: disable-next-line=FP003 -- bound accumulator; inflated by gamma(k) below
            t2 = float(np.sum(np.abs(buf2[:m2]))) if m2 else 0.0

    # res + r == main + e exactly (scalar TwoSum).
    res = main + e
    bv = res - main
    r = (main - (res - bv)) + (e - bv)

    # The uncaptured mass is sum(errs2), bounded by t2 = sum|errs2|.
    # t2 itself is a float pairwise sum of non-negative terms, so it
    # understates the true mass by at most the relative gamma of its
    # own accumulation depth — inflate by 2*k*u (k covers np.sum's
    # blocked recursion) plus one subnormal quantum against underflow.
    if m2 > 1:
        k = math.ceil(math.log2(m2)) + _NP_SUM_EXTRA_DEPTH
    else:
        k = 1 + _NP_SUM_EXTRA_DEPTH
    beta = t2 * (1.0 + 2.0 * k * _U)
    if t2 > 0.0:
        beta += _SUBNORMAL_ULP  # guards against the inflation rounding down

    if res == 0.0:  # reprolint: disable=FP002 -- exact-zero test to normalize -0.0
        res = 0.0  # normalize -0.0 to the accumulator rounding convention

    if not (math.isfinite(res) and math.isfinite(r) and math.isfinite(beta)):
        return CascadeCertificate(
            res if math.isfinite(res) else math.inf, math.inf, False, -math.inf, n
        )

    if beta == 0.0:  # reprolint: disable=FP002 -- beta==0 certifies every residual was captured
        # sum(errs) == e exactly, so main + e == sum(x) and res is the
        # hardware's nearest-even rounding of the exact sum — correctly
        # rounded by construction, midpoint ties included.
        return CascadeCertificate(res, abs(r), True, math.inf, n, r, 0.0)

    # True sum = res + r + delta with |delta| <= beta and r exact. It
    # rounds to res iff the offset interval [r - beta, r + beta] lies
    # strictly inside the open cell (-half_below, +half_above) — the
    # midpoints toward res's neighbours (asymmetric at binade edges).
    # Strictness also excludes midpoint ties, making the nearest-even
    # question moot. Exact rational comparisons; no rounding slack.
    lo = math.nextafter(res, -math.inf)
    hi = math.nextafter(res, math.inf)
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return CascadeCertificate(res, abs(r) + beta, False, -math.inf, n)
    rf = Fraction(r)
    bf = Fraction(beta)
    half_above = (Fraction(hi) - Fraction(res)) / 2
    half_below = (Fraction(res) - Fraction(lo)) / 2
    gap = min(half_above - rf, half_below + rf)  # distance to nearest boundary
    certified = gap > bf
    margin = _frac_log2(gap / bf) if gap > 0 else -math.inf
    return CascadeCertificate(res, abs(r) + beta, certified, margin, n, r, beta)
