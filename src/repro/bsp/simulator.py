"""Bulk-synchronous (MPI-style) message-passing simulator.

The fourth deployment substrate, complementing PRAM / external-memory /
MapReduce: a rank-based bulk-synchronous machine in the style of MPI
collectives (the form in which HPC codes would actually consume this
library — an exact ``allreduce``). Ranks run Python callables that
communicate through explicit ``send``/``recv`` against a superstep
barrier; the simulator counts supersteps (latency), messages, and bytes
on the wire, so collective algorithms can be checked against their
``O(log P)`` round complexity just like the other substrates.

Deterministic by construction: ranks execute round-robin within a
superstep and messages are delivered in (superstep, sender, order)
order, so every run of a program is bit-identical.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ModelViolationError
from repro.util.validation import check_positive_int

__all__ = ["BSPMachine", "BSPStats", "Rank"]


@dataclass
class BSPStats:
    """Communication cost counters.

    Attributes:
        supersteps: barrier-separated communication rounds.
        messages: point-to-point messages delivered.
        bytes_sent: total payload volume.
    """

    supersteps: int = 0
    messages: int = 0
    bytes_sent: int = 0


class Rank:
    """One process's view of the machine (passed to the rank program)."""

    def __init__(self, machine: "BSPMachine", rank: int) -> None:
        self._machine = machine
        self.rank = rank
        self.size = machine.size

    def send(self, dest: int, payload: bytes) -> None:
        """Queue ``payload`` for ``dest``; delivered after the next barrier."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination rank {dest} out of range")
        if not isinstance(payload, (bytes, bytearray)):
            raise TypeError("BSP payloads are bytes (serialize explicitly)")
        self._machine._outbox[self.rank].append((dest, bytes(payload)))

    def recv_all(self) -> List[Tuple[int, bytes]]:
        """Messages delivered to this rank at the last barrier,
        as ``(source, payload)`` in deterministic order."""
        return list(self._machine._inbox.get(self.rank, ()))


class BSPMachine:
    """Superstep-synchronous machine running ``size`` rank programs.

    A *program* is a generator function ``prog(rank: Rank)`` that
    ``yield``s at every barrier; the machine advances all ranks one
    superstep at a time, moving outboxes to inboxes between steps.
    Programs finish by returning; their return values are collected.
    """

    def __init__(self, size: int) -> None:
        self.size = check_positive_int(size, name="size")
        self.stats = BSPStats()
        self._outbox: Dict[int, List[Tuple[int, bytes]]] = defaultdict(list)
        self._inbox: Dict[int, List[Tuple[int, bytes]]] = {}

    def run(self, program: Callable[[Rank], "object"]) -> List[object]:
        """Execute ``program`` on every rank to completion."""
        gens = []
        results: List[Optional[object]] = [None] * self.size
        for r in range(self.size):
            gens.append(program(Rank(self, r)))
        live = set(range(self.size))
        guard = 0
        while live:
            finished = set()
            for r in sorted(live):
                try:
                    next(gens[r])
                except StopIteration as stop:
                    results[r] = stop.value
                    finished.add(r)
            live -= finished
            self._barrier()
            guard += 1
            if guard > 10_000:
                raise ModelViolationError("BSP program failed to terminate")
        return results

    def _barrier(self) -> None:
        self.stats.supersteps += 1
        inbox: Dict[int, List[Tuple[int, bytes]]] = defaultdict(list)
        for src in sorted(self._outbox):
            for dest, payload in self._outbox[src]:
                inbox[dest].append((src, payload))
                self.stats.messages += 1
                self.stats.bytes_sent += len(payload)
        self._outbox = defaultdict(list)
        self._inbox = dict(inbox)
