"""Exact collective reductions on the BSP machine.

The deployment shape for MPI codes: each rank holds a block of the
data; ``exact_allreduce_sum`` gives **every** rank the bit-identical
correctly rounded global sum in ``O(log P)`` supersteps, by exchanging
wire-framed kernel partials through a recursive-doubling butterfly.
Because kernel combining is exact and carry-free (or certified, for the
speculative kernels), the result is independent of the communication
schedule — the reproducibility property plain float allreduce lacks
(and the reason MPI_SUM results differ across topologies).

The collective is a kernel schedule: any registered
:class:`~repro.kernels.base.SumKernel` supplies fold/combine/round and
the wire format its partials cross the network in. A speculative
kernel whose final certification fails on any rank triggers one exact
rerun of the whole collective — extra supersteps, never a wrong bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.bsp.simulator import BSPMachine, Rank
from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.errors import CertificationError
from repro.kernels import SumKernel, get_kernel

__all__ = ["exact_allreduce_sum", "AllreduceResult"]


@dataclass
class AllreduceResult:
    """Outcome of the collective.

    Attributes:
        values: per-rank results (all bit-identical floats).
        supersteps: communication rounds used (``ceil(log2 P)`` for the
            butterfly, +1 for the final barrier bookkeeping).
        messages: total point-to-point messages.
        bytes_sent: total wire volume (P log P accumulators).
        partial: wire frame of rank 0's final (global) accumulator, so
            exact-fraction reductions (:mod:`repro.reduce`) can read
            the exact term sum back instead of only the rounded float.
    """

    values: List[float]
    supersteps: int
    messages: int
    bytes_sent: int
    partial: Optional[bytes] = None


def exact_allreduce_sum(
    blocks: Sequence[np.ndarray],
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
    kernel: Optional[SumKernel] = None,
) -> AllreduceResult:
    """All ranks obtain the correctly rounded sum of all blocks.

    Args:
        blocks: ``blocks[r]`` is rank ``r``'s local data (any sizes,
            empty allowed). ``P = len(blocks)`` need not be a power of
            two — the butterfly masks out absent partners.
        kernel: the :class:`~repro.kernels.base.SumKernel` whose
            partials cross the network (default ``"sparse"``).

    Recursive doubling: at round ``k`` rank ``r`` exchanges its current
    accumulator with rank ``r XOR 2**k`` (when that rank exists) and
    merges. After ``ceil(log2 P)`` rounds every rank holds the exact
    global accumulator. For non-power-of-two ``P``, ranks whose partner
    is missing forward their state to themselves (no message), which
    preserves correctness at the cost of the same round count as the
    next power of two.
    """
    p = len(blocks)
    if p == 0:
        raise ValueError("need at least one rank")
    if kernel is None:
        kernel = get_kernel("sparse", radix=radix)
    if mode != "nearest" and not kernel.exact:
        kernel = kernel.exact_variant()

    # With non-power-of-two P the plain butterfly double-counts: route
    # through a power-of-two-folded schedule instead — ranks beyond the
    # fold first send their accumulator to `r - fold`, the butterfly
    # runs on the folded power of two, then results fan back out.
    fold = 1 << (p.bit_length() - 1)  # largest power of two <= p
    if p > 1 and fold != p:
        return _run_certified(
            lambda k: _allreduce_folded(blocks, p, fold, mode, k), kernel
        )
    return _run_certified(
        lambda k: _allreduce_butterfly(blocks, p, mode, k), kernel
    )


def _run_certified(collective, kernel: SumKernel) -> AllreduceResult:
    """Run the collective; on a failed certificate, rerun exactly.

    Speculation can cost a second collective, never a wrong bit; the
    result reports the (exact) rerun's schedule.
    """
    try:
        return collective(kernel)
    except CertificationError:
        return collective(kernel.exact_variant())


def _allreduce_butterfly(
    blocks: Sequence[np.ndarray],
    p: int,
    mode: str,
    kernel: SumKernel,
) -> AllreduceResult:
    """Power-of-two recursive-doubling schedule."""
    rounds = max(1, math.ceil(math.log2(p))) if p > 1 else 0
    machine = BSPMachine(p)
    root_wire: List[Optional[bytes]] = [None]

    def program(rank: Rank):
        acc = kernel.fold(np.asarray(blocks[rank.rank], dtype=np.float64))
        for k in range(rounds):
            partner = rank.rank ^ (1 << k)
            if partner < rank.size:
                rank.send(partner, kernel.to_wire(acc))
            yield  # superstep barrier
            for _src, payload in rank.recv_all():
                acc = kernel.combine(acc, kernel.from_wire(payload))
        if rank.rank == 0:
            root_wire[0] = kernel.to_wire(acc)
        return kernel.round(acc, mode)

    values = machine.run(program)
    return AllreduceResult(
        values=[float(v) for v in values],
        supersteps=machine.stats.supersteps,
        messages=machine.stats.messages,
        bytes_sent=machine.stats.bytes_sent,
        partial=root_wire[0],
    )


def _allreduce_folded(
    blocks: Sequence[np.ndarray],
    p: int,
    fold: int,
    mode: str,
    kernel: SumKernel,
) -> AllreduceResult:
    """Non-power-of-two schedule: fold extras in, butterfly, fan out."""
    rounds = max(1, math.ceil(math.log2(fold)))
    machine = BSPMachine(p)
    root_wire: List[Optional[bytes]] = [None]

    def program(rank: Rank):
        acc = kernel.fold(np.asarray(blocks[rank.rank], dtype=np.float64))
        r = rank.rank
        # fold-in step
        if r >= fold:
            rank.send(r - fold, kernel.to_wire(acc))
        yield
        if r < fold:
            for _src, payload in rank.recv_all():
                acc = kernel.combine(acc, kernel.from_wire(payload))
            for k in range(rounds):
                partner = r ^ (1 << k)
                rank.send(partner, kernel.to_wire(acc))
                yield
                for _src, payload in rank.recv_all():
                    acc = kernel.combine(acc, kernel.from_wire(payload))
            # fan-out to the folded-away partner
            if r + fold < rank.size:
                rank.send(r + fold, kernel.to_wire(acc))
            yield
            if r == 0:
                root_wire[0] = kernel.to_wire(acc)
            return kernel.round(acc, mode)
        # folded-away ranks idle through the butterfly, then receive
        for _ in range(rounds):
            yield
        yield
        msgs = rank.recv_all()
        final = kernel.from_wire(msgs[-1][1])
        return kernel.round(final, mode)

    values = machine.run(program)
    return AllreduceResult(
        values=[float(v) for v in values],
        supersteps=machine.stats.supersteps,
        messages=machine.stats.messages,
        bytes_sent=machine.stats.bytes_sent,
        partial=root_wire[0],
    )
