"""Exact collective reductions on the BSP machine.

The deployment shape for MPI codes: each rank holds a block of the
data; ``exact_allreduce_sum`` gives **every** rank the bit-identical
correctly rounded global sum in ``O(log P)`` supersteps, by exchanging
serialized sparse superaccumulators through a recursive-doubling
butterfly. Because superaccumulator merging is exact and carry-free,
the result is independent of the communication schedule — the
reproducibility property plain float allreduce lacks (and the reason
MPI_SUM results differ across topologies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.bsp.simulator import BSPMachine, Rank
from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.sparse import SparseSuperaccumulator

__all__ = ["exact_allreduce_sum", "AllreduceResult"]


@dataclass
class AllreduceResult:
    """Outcome of the collective.

    Attributes:
        values: per-rank results (all bit-identical floats).
        supersteps: communication rounds used (``ceil(log2 P)`` for the
            butterfly, +1 for the final barrier bookkeeping).
        messages: total point-to-point messages.
        bytes_sent: total wire volume (P log P accumulators).
    """

    values: List[float]
    supersteps: int
    messages: int
    bytes_sent: int


def exact_allreduce_sum(
    blocks: Sequence[np.ndarray],
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    mode: str = "nearest",
) -> AllreduceResult:
    """All ranks obtain the correctly rounded sum of all blocks.

    Args:
        blocks: ``blocks[r]`` is rank ``r``'s local data (any sizes,
            empty allowed). ``P = len(blocks)`` need not be a power of
            two — the butterfly masks out absent partners.

    Recursive doubling: at round ``k`` rank ``r`` exchanges its current
    accumulator with rank ``r XOR 2**k`` (when that rank exists) and
    merges. After ``ceil(log2 P)`` rounds every rank holds the exact
    global accumulator. For non-power-of-two ``P``, ranks whose partner
    is missing forward their state to themselves (no message), which
    preserves correctness at the cost of the same round count as the
    next power of two.
    """
    p = len(blocks)
    if p == 0:
        raise ValueError("need at least one rank")
    rounds = max(1, math.ceil(math.log2(p))) if p > 1 else 0
    machine = BSPMachine(p)

    def program(rank: Rank):
        acc = SparseSuperaccumulator.from_floats(
            np.asarray(blocks[rank.rank], dtype=np.float64), radix
        )
        for k in range(rounds):
            partner = rank.rank ^ (1 << k)
            if partner < rank.size:
                rank.send(partner, acc.to_bytes())
            yield  # superstep barrier
            for _src, payload in rank.recv_all():
                acc = acc.add(SparseSuperaccumulator.from_bytes(payload))
        return acc.to_float(mode)

    # With non-power-of-two P the plain butterfly double-counts: route
    # through a power-of-two-folded schedule instead — ranks beyond the
    # fold first send their accumulator to `r - fold`, the butterfly
    # runs on the folded power of two, then results fan back out.
    fold = 1 << (p.bit_length() - 1)  # largest power of two <= p
    if p > 1 and fold != p:
        return _allreduce_folded(blocks, p, fold, radix, mode)

    values = machine.run(program)
    return AllreduceResult(
        values=[float(v) for v in values],
        supersteps=machine.stats.supersteps,
        messages=machine.stats.messages,
        bytes_sent=machine.stats.bytes_sent,
    )


def _allreduce_folded(
    blocks: Sequence[np.ndarray],
    p: int,
    fold: int,
    radix: RadixConfig,
    mode: str,
) -> AllreduceResult:
    """Non-power-of-two schedule: fold extras in, butterfly, fan out."""
    rounds = max(1, math.ceil(math.log2(fold)))
    machine = BSPMachine(p)

    def program(rank: Rank):
        acc = SparseSuperaccumulator.from_floats(
            np.asarray(blocks[rank.rank], dtype=np.float64), radix
        )
        r = rank.rank
        # fold-in step
        if r >= fold:
            rank.send(r - fold, acc.to_bytes())
        yield
        if r < fold:
            for _src, payload in rank.recv_all():
                acc = acc.add(SparseSuperaccumulator.from_bytes(payload))
            for k in range(rounds):
                partner = r ^ (1 << k)
                rank.send(partner, acc.to_bytes())
                yield
                for _src, payload in rank.recv_all():
                    acc = acc.add(SparseSuperaccumulator.from_bytes(payload))
            # fan-out to the folded-away partner
            if r + fold < rank.size:
                rank.send(r + fold, acc.to_bytes())
            yield
            return acc.to_float(mode)
        # folded-away ranks idle through the butterfly, then receive
        for _ in range(rounds):
            yield
        yield
        msgs = rank.recv_all()
        final = SparseSuperaccumulator.from_bytes(msgs[-1][1])
        return final.to_float(mode)

    values = machine.run(program)
    return AllreduceResult(
        values=[float(v) for v in values],
        supersteps=machine.stats.supersteps,
        messages=machine.stats.messages,
        bytes_sent=machine.stats.bytes_sent,
    )
