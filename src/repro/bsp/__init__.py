"""Bulk-synchronous (MPI-style) substrate: exact collectives.

* :class:`BSPMachine` — superstep-synchronous rank simulator with
  message/byte/round counters;
* :func:`exact_allreduce_sum` — recursive-doubling allreduce with exact
  superaccumulator merging: every rank gets the bit-identical correctly
  rounded global sum in ``O(log P)`` supersteps.
"""

from repro.bsp.allreduce import AllreduceResult, exact_allreduce_sum
from repro.bsp.simulator import BSPMachine, BSPStats, Rank

__all__ = [
    "AllreduceResult",
    "exact_allreduce_sum",
    "BSPMachine",
    "BSPStats",
    "Rank",
]
