"""Binary dataset files and block-wise readers.

The experiments' pipeline is "first generate a dataset ... and store it
to disk. Then, process the same generated dataset with each algorithm
one after another." These helpers provide that shared on-disk format:
a tiny header plus raw little-endian float64, streamable in blocks so
both the external-memory loader and the HDFS-style loader ingest the
same files.

For the zero-copy data plane, :func:`map_dataset` opens the payload as
a memory-mapped view (no read-and-copy) and
:func:`dataset_block_refs` tiles it into
:class:`~repro.mapreduce.dataplane.BlockRef` descriptors that feed the
MapReduce combine phase directly — workers mmap the file themselves,
so a dataset larger than RAM never materializes anywhere.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Union

import numpy as np

from repro import codec
from repro.util.validation import ensure_float64_array

__all__ = [
    "write_dataset",
    "read_dataset",
    "iter_blocks",
    "dataset_len",
    "map_dataset",
    "dataset_block_refs",
]

def write_dataset(path: Union[str, Path], values) -> int:
    """Write values as a ``.f64`` dataset file; returns the item count."""
    arr = ensure_float64_array(values)
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(codec.encode_dataset_header(arr.size))
        fh.write(arr.astype("<f8").tobytes())
    return int(arr.size)


def _read_header(fh) -> int:
    # decode_dataset_header raises CodecError (a ValueError) on short
    # reads and wrong magic alike — a clipped file can no longer leak a
    # raw struct.error.
    return codec.decode_dataset_header(fh.read(codec.DATASET_HEADER_SIZE))


def dataset_len(path: Union[str, Path]) -> int:
    """Item count from the header (no data read)."""
    with Path(path).open("rb") as fh:
        return _read_header(fh)


def read_dataset(path: Union[str, Path]) -> np.ndarray:
    """Read the whole dataset into memory."""
    with Path(path).open("rb") as fh:
        count = _read_header(fh)
        data = np.frombuffer(fh.read(8 * count), dtype="<f8", count=count)
    return data.astype(np.float64)


def map_dataset(path: Union[str, Path]) -> np.ndarray:
    """Memory-mapped read-only view of a dataset's payload (zero-copy).

    Pages fault in on access instead of being read up front, so this is
    the right entry point for block-wise consumers of datasets that may
    not fit in memory.
    """
    path = Path(path)
    count = dataset_len(path)
    return np.memmap(path, dtype="<f8", mode="r", offset=codec.DATASET_HEADER_SIZE, shape=(count,))


def dataset_block_refs(
    path: Union[str, Path], block_items: int = 1 << 17
) -> List["BlockRef"]:
    """Zero-copy block descriptors over an on-disk dataset.

    The returned refs dispatch to MapReduce workers as ~100-byte
    payloads; each worker mmaps the file once and views its blocks in
    place — the on-disk analogue of the shared-memory plane.
    """
    from repro.mapreduce.dataplane import BlockRef

    if block_items < 1:
        raise ValueError("block_items must be >= 1")
    path = Path(path)
    count = dataset_len(path)
    refs: List[BlockRef] = []
    for start in range(0, max(count, 1), block_items):
        length = min(block_items, count - start) if count else 0
        refs.append(
            BlockRef(
                kind="mmap",
                segment=str(path),
                offset=codec.DATASET_HEADER_SIZE + start * 8,
                length=length,
            )
        )
        if count == 0:
            break
    return refs


def iter_blocks(
    path: Union[str, Path], block_items: int = 1 << 17
) -> Iterator[np.ndarray]:
    """Stream the dataset in blocks of ``block_items`` (last may be short)."""
    if block_items < 1:
        raise ValueError("block_items must be >= 1")
    with Path(path).open("rb") as fh:
        count = _read_header(fh)
        remaining = count
        while remaining > 0:
            take = min(block_items, remaining)
            chunk = np.frombuffer(fh.read(8 * take), dtype="<f8", count=take)
            remaining -= take
            yield chunk.astype(np.float64)
