"""Experimental data: the four input distributions and dataset files."""

from repro.data.generators import (
    DISTRIBUTIONS,
    PANEL_NAMES,
    exponent_window,
    generate,
    generate_anderson,
    generate_random_signs,
    generate_sum_zero,
    generate_well_conditioned,
)
from repro.data.io import (
    dataset_len,
    iter_blocks,
    map_dataset,
    read_dataset,
    write_dataset,
)

__all__ = [
    "DISTRIBUTIONS",
    "PANEL_NAMES",
    "exponent_window",
    "generate",
    "generate_anderson",
    "generate_random_signs",
    "generate_sum_zero",
    "generate_well_conditioned",
    "dataset_len",
    "iter_blocks",
    "map_dataset",
    "read_dataset",
    "write_dataset",
]
