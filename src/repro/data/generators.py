"""The four experimental input distributions (paper §6.3, after [39]).

The paper's datasets are "randomly generated using four different
distributions as described in [Zhu & Hayes 2009]":

1. ``"well"`` — positive random numbers: condition number C(X) = 1
   (the "C(X)=1" panels);
2. ``"random"`` — a mix of positive and negative numbers generated
   uniformly at random;
3. ``"anderson"`` — Anderson's ill-conditioned data: random numbers
   with their arithmetic mean subtracted from each (heavy
   cancellation, and the exponent range collapses to ~the significand
   width regardless of delta — the Figure 2 discussion);
4. ``"sumzero"`` — numbers whose *real* sum is exactly zero
   (constructed as sign-paired values, shuffled), the worst case for
   iFastSum and an infinite condition number.

Two adversarial additions (not paper data) stress the adaptive
engine's certified fast path:

5. ``"cancel"`` — massive cancellation with a tiny *non-zero* residual
   sum (huge but finite condition number);
6. ``"tie"`` — true sums landing on or one quantum away from a
   rounding-cell midpoint, where correct rounding hinges on the final
   bit.

Every distribution takes the exponent-spread parameter ``delta``: base
values are ``mantissa * 2**e`` with a 52-bit random mantissa in
``[1, 2)`` and ``e`` uniform over an integer window of width ``delta``
(paper: "the parameter delta defines an upper bound for the range of
exponents"; its maximum useful value for binary64 is 2046, and the
experiments sweep 10..2000).

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

import numpy as np

from repro.util.validation import check_positive_int

__all__ = [
    "DISTRIBUTIONS",
    "generate",
    "generate_well_conditioned",
    "generate_random_signs",
    "generate_anderson",
    "generate_sum_zero",
    "generate_massive_cancellation",
    "generate_near_ulp_tie",
    "exponent_window",
]

#: Highest exponent the generators will emit, kept a little below the
#: overflow boundary so partial sums of a billion same-signed values
#: stay finite (2**969 * 2**31 << 2**1024).
_E_MAX = 969


def exponent_window(delta: int) -> Tuple[int, int]:
    """Integer exponent window ``[lo, hi]`` of width ``delta``.

    Centered on zero, clipped from above at ``_E_MAX`` and from below
    at the bottom of the normal range; ``delta`` is capped at the
    binary64 maximum of 2046 like the paper's experiments.
    """
    delta = max(1, min(int(delta), 2046))
    hi = min(delta - delta // 2, _E_MAX)
    lo = max(hi - delta + 1, -1021)
    return lo, hi


def _magnitudes(rng: np.random.Generator, n: int, delta: int) -> np.ndarray:
    """Random positive values with exponents uniform over the window."""
    lo, hi = exponent_window(delta)
    mantissa = 1.0 + rng.integers(0, 1 << 52, size=n, dtype=np.int64) * 2.0**-52
    exponents = rng.integers(lo, hi + 1, size=n).astype(np.int32)
    return np.ldexp(mantissa, exponents)


def generate_well_conditioned(n: int, delta: int = 2000, seed: int = 0) -> np.ndarray:
    """Distribution 1: positive random values, ``C(X) = 1``."""
    check_positive_int(n, name="n")
    return _magnitudes(np.random.default_rng(seed), n, delta)


def generate_random_signs(n: int, delta: int = 2000, seed: int = 0) -> np.ndarray:
    """Distribution 2: uniform random values of both signs."""
    check_positive_int(n, name="n")
    rng = np.random.default_rng(seed)
    mags = _magnitudes(rng, n, delta)
    signs = rng.choice(np.array([-1.0, 1.0]), size=n)
    return mags * signs


def generate_anderson(n: int, delta: int = 2000, seed: int = 0) -> np.ndarray:
    """Distribution 3: Anderson's ill-conditioned data.

    Random positive values minus their (float) arithmetic mean: the sum
    collapses to near-cancellation noise, and the subtraction pulls all
    exponents toward the mean's, shrinking the effective exponent
    spread to roughly the significand width however large ``delta`` is.
    """
    check_positive_int(n, name="n")
    base = _magnitudes(np.random.default_rng(seed), n, delta)
    mean = float(np.mean(base))
    return base - mean


def generate_sum_zero(n: int, delta: int = 2000, seed: int = 0) -> np.ndarray:
    """Distribution 4: exact real sum of zero.

    Sign-paired construction: ``n // 2`` random magnitudes, each present
    once positively and once negatively, shuffled (odd ``n`` gets one
    literal zero). Exactly cancelling by construction; the condition
    number is infinite.
    """
    check_positive_int(n, name="n")
    rng = np.random.default_rng(seed)
    half = n // 2
    mags = _magnitudes(rng, half, delta)
    parts = [mags, -mags]
    if n % 2:
        parts.append(np.zeros(1))
    out = np.concatenate(parts) if parts else np.zeros(0)
    rng.shuffle(out)
    return out


def generate_massive_cancellation(n: int, delta: int = 2000, seed: int = 0) -> np.ndarray:
    """Stress distribution: huge paired mass, tiny non-zero residual sum.

    ``±m`` pairs spanning the exponent window cancel exactly; a small
    cohort of positive values pinned at the *bottom* of the window
    survives as the true sum. The condition number is enormous but
    finite (unlike ``"sumzero"``), so every digits-of-the-answer claim
    is falsifiable — the adversarial case for the adaptive engine's
    Tier-0 certificate, which must refuse to certify and escalate.
    """
    check_positive_int(n, name="n")
    rng = np.random.default_rng(seed)
    lo, _hi = exponent_window(delta)
    n_resid = max(1, n // 16)
    n_pairs = (n - n_resid) // 2
    n_resid = n - 2 * n_pairs  # absorb odd leftover into the residual cohort
    mantissa = 1.0 + rng.integers(0, 1 << 52, size=n_resid, dtype=np.int64) * 2.0**-52
    resid = np.ldexp(mantissa, lo)
    parts = [resid]
    if n_pairs:
        mags = _magnitudes(rng, n_pairs, delta)
        parts += [mags, -mags]
    out = np.concatenate(parts)
    rng.shuffle(out)
    return out


def generate_near_ulp_tie(n: int, delta: int = 2000, seed: int = 0) -> np.ndarray:
    """Stress distribution: true sums a whisker from a rounding tie.

    One anchor value at the top of the exponent window, one value equal
    to half the anchor's ulp nudged by ``±1`` quantum at depth
    ``min(delta, 52)`` bits below (or not at all — an exact tie —
    cycling by seed), and exactly-cancelling padding pairs. The true
    sum therefore sits on or just beside the midpoint of the anchor's
    rounding cell: correct rounding hinges on the final quantum, the
    hardest regime for any certificate that hopes to stop early. The
    exponent span is structurally ~``53 + depth`` bits however small
    ``delta`` is.
    """
    check_positive_int(n, name="n")
    rng = np.random.default_rng(seed)
    lo_w, hi = exponent_window(delta)
    depth = int(min(max(int(delta), 1), 52))
    # Anchor in [2**hi, 2**(hi+1)): ulp = 2**(hi-52), half-ulp = 2**(hi-53).
    anchor = float(np.ldexp(1.0 + int(rng.integers(0, 1 << 52)) * 2.0**-52, hi))
    half = math.ldexp(1.0, hi - 53)
    direction = int(rng.integers(0, 3)) - 1  # -1 below tie, 0 exact tie, +1 above
    tie_term = half + direction * math.ldexp(1.0, hi - 53 - depth)  # exact: depth <= 52
    if n == 1:
        return np.array([anchor])
    elements = [np.array([anchor, tie_term])]
    pad = n - 2
    if pad:
        mags = _magnitudes(rng, pad // 2, delta) if pad // 2 else np.zeros(0)
        elements += [mags, -mags]
        if pad % 2:
            elements.append(np.zeros(1))
    out = np.concatenate(elements)
    rng.shuffle(out)
    return out


DISTRIBUTIONS: Dict[str, Callable[[int, int, int], np.ndarray]] = {
    "well": generate_well_conditioned,
    "random": generate_random_signs,
    "anderson": generate_anderson,
    "sumzero": generate_sum_zero,
    "cancel": generate_massive_cancellation,
    "tie": generate_near_ulp_tie,
}

#: Display names used by the figure harness, matching the paper panels
#: (the last two are this repo's adversarial additions, not paper data).
PANEL_NAMES = {
    "well": "C(X)=1",
    "random": "Random",
    "anderson": "Anderson's",
    "sumzero": "Sum=Zero",
    "cancel": "Massive-Cancel",
    "tie": "Near-Ulp-Tie",
}


def generate(
    distribution: str, n: int, *, delta: int = 2000, seed: int = 0
) -> np.ndarray:
    """Dispatch to one of the four distributions by key.

    Args:
        distribution: one of ``"well"``, ``"random"``, ``"anderson"``,
            ``"sumzero"``.
        n: number of values.
        delta: exponent-spread parameter (paper sweeps 10..2000).
        seed: RNG seed (deterministic output).
    """
    try:
        fn = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; expected one of "
            f"{sorted(DISTRIBUTIONS)}"
        ) from None
    return fn(n, delta, seed)
