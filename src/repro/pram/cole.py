"""Cole-style pipelined (cascading) merge sort — the O(log n) ingredient.

The paper's step 3 reaches ``O(log n)`` *total* rounds for building all
the summation tree's merged exponent lists "via the cascading
divide-and-conquer technique [Atallah-Cole-Goodrich]", i.e. Cole's
pipelined merge sort, instead of the ``O(log^2 n)`` of level-by-level
merging. This module implements that pipeline:

* every tree node ``v`` maintains a sorted *up-list* that grows over
  synchronous **stages**; at each stage ``v`` merges *samples* of its
  children's up-lists — every 4th element while a child is still
  filling, every 2nd / every 1st in the two stages after the child
  becomes *full* (holds all its leaves) — so a node is full three
  stages after its children, and the root is full after ``~3 ceil(log2
  n)`` stages;
* the reason each stage costs ``O(1)`` parallel time is Cole's
  *cover property*: successive merged lists interleave so tightly
  (each gap of the previous list receives O(1) new elements) that a
  stage's merge can reuse the previous stage's ranks instead of
  searching. The simulation performs stage merges with vectorized host
  sorting but **verifies the cover property** at every node and stage
  (``check_cover=True``) — the invariant that justifies charging O(1)
  rounds per stage — and charges the model O(1) rounds and O(total
  list size) work per stage.

Ties are broken by original position (keys are paired with their input
index), which both makes the sort stable and keeps the cover-property
bookkeeping well-defined on duplicate keys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelViolationError
from repro.pram.machine import PRAM

__all__ = ["cole_merge_sort", "ColeSortStats"]

_REC = np.dtype([("k", "<f8"), ("i", "<i8")])


@dataclass
class ColeSortStats:
    """Observability for the pipeline (asserted by tests/benches).

    Attributes:
        stages: synchronous stages until the root filled (``~3 log2 n``).
        max_cover_gap: the largest number of new elements landing in one
            gap of a node's previous list at any stage — Cole's lemma
            bounds this by a small constant; measuring it is the
            evidence for the O(1)-per-stage round charge.
        total_items_processed: sum of merged-list sizes over all stages
            (the O(n log n) work).
    """

    stages: int = 0
    max_cover_gap: int = 0
    total_items_processed: int = 0


class _Node:
    __slots__ = ("left", "right", "size", "uplist", "full_since")

    def __init__(self, left: Optional["_Node"], right: Optional["_Node"], size: int):
        self.left = left
        self.right = right
        self.size = size
        self.uplist = np.empty(0, dtype=_REC)
        self.full_since: Optional[int] = None


def _sample_rate(full_since: Optional[int], prev_stage: int) -> int:
    """Cole's schedule: every 4th while filling, then 2nd, then all."""
    if full_since is None:
        return 4
    since = prev_stage - full_since
    if since <= 1:
        return 4
    if since == 2:
        return 2
    return 1


def _sample(arr: np.ndarray, rate: int) -> np.ndarray:
    if rate == 1:
        return arr
    return arr[rate - 1 :: rate]


def _cover_gap(old: np.ndarray, new: np.ndarray) -> int:
    """Max count of ``new`` elements inside one gap of ``old``."""
    pos = np.searchsorted(new, old)
    boundaries = np.concatenate([[0], pos, [new.size]])
    return int(np.max(np.diff(boundaries)))


def cole_merge_sort(
    machine: PRAM,
    keys: np.ndarray,
    *,
    check_cover: bool = True,
    cover_bound: int = 8,
) -> Tuple[np.ndarray, ColeSortStats]:
    """Sort ``keys`` with the pipelined merge sort; O(1) rounds per stage.

    Args:
        machine: PRAM accountant (one O(1)-round charge per stage, work
            = items touched in that stage).
        keys: float64 array.
        check_cover: verify the cover property at every node and stage;
            a violation raises :class:`ModelViolationError` because it
            would invalidate the O(1)-round charge.
        cover_bound: allowed cover constant (Cole's analysis yields a
            small constant; 8 sits comfortably above it).

    Returns:
        ``(sorted_keys, stats)``; the sort is stable.
    """
    arr = np.asarray(keys, dtype=np.float64)
    n = arr.shape[0]
    stats = ColeSortStats()
    if n <= 1:
        return arr.copy(), stats

    # Leaves (full at stage 0) and the internal tree above them.
    leaves: List[_Node] = []
    for i in range(n):
        node = _Node(None, None, 1)
        rec = np.empty(1, dtype=_REC)
        rec["k"] = arr[i]
        rec["i"] = i
        node.uplist = rec
        node.full_since = 0
        leaves.append(node)
    internal: List[_Node] = []
    level = leaves
    while len(level) > 1:
        parents = [
            _Node(level[j], level[j + 1], level[j].size + level[j + 1].size)
            for j in range(0, len(level) - 1, 2)
        ]
        internal.extend(parents)
        if len(level) % 2:
            parents = parents + [level[-1]]  # carried node, already tracked
        level = parents
    root = level[0]

    stage = 0
    max_stages = 6 * (math.ceil(math.log2(n)) + 2)
    while root.full_since is None:
        stage += 1
        # Synchronous semantics: all merges read the *previous* stage's
        # lists; snapshot before any update.
        snapshot = {id(nd): (nd.uplist, nd.full_since) for nd in leaves + internal}
        stage_work = 0
        stage_procs = 0
        updates: List[Tuple[_Node, np.ndarray, bool]] = []
        for nd in internal:
            if nd.full_since is not None:
                continue  # finished nodes keep their full lists
            l_list, l_full = snapshot[id(nd.left)]
            r_list, r_full = snapshot[id(nd.right)]
            ls = _sample(l_list, _sample_rate(l_full, stage - 1))
            rs = _sample(r_list, _sample_rate(r_full, stage - 1))
            if ls.size == 0 and rs.size == 0:
                continue
            merged = np.sort(np.concatenate([ls, rs]), order=("k", "i"))
            if check_cover and nd.uplist.size:
                gap = _cover_gap(nd.uplist, merged)
                stats.max_cover_gap = max(stats.max_cover_gap, gap)
                if gap > cover_bound:
                    raise ModelViolationError(
                        f"cover property violated: {gap} new elements in one "
                        f"previous-list gap (bound {cover_bound})"
                    )
            became_full = (
                merged.size == nd.size and l_full is not None and r_full is not None
                and ls.size == l_list.size and rs.size == r_list.size
            )
            updates.append((nd, merged, became_full))
            stage_work += int(merged.size)
            stage_procs = max(stage_procs, int(merged.size))
        for nd, merged, became_full in updates:
            nd.uplist = merged
            if became_full:
                nd.full_since = stage
        stats.stages = stage
        stats.total_items_processed += stage_work
        machine.charge(rounds=1, work=stage_work, processors=stage_procs)
        if stage > max_stages:
            raise ModelViolationError("pipelined sort failed to converge")

    return root.uplist["k"].copy(), stats
