"""Round-synchronous EREW PRAM cost model.

The PRAM algorithms in this package are *simulations with accounting*:
the data movement is performed by vectorized NumPy (one array operation
stands for one synchronous parallel step over its elements), while a
:class:`PRAM` object charges the time (parallel rounds) and work (total
operations) the step would cost on the abstract machine, and can verify
the EREW discipline — that no memory cell is read or written by two
processors within the same round.

This is the standard way to validate PRAM *bounds* without cycle-exact
emulation: the round/work counters are the observables the paper's
Theorems 2 and 4 make claims about, and the benches in
``benchmarks/bench_pram.py`` plot them against ``n`` and ``C(X)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ModelViolationError

__all__ = ["PRAM", "PRAMStats"]


@dataclass
class PRAMStats:
    """Accumulated cost of a PRAM computation.

    Attributes:
        rounds: synchronous parallel steps (the model's "time").
        work: total primitive operations across all processors.
        max_processors: the widest round seen — the processor count a
            real schedule would need to realize the counted rounds
            (before Brent's-theorem rescheduling).
    """

    rounds: int = 0
    work: int = 0
    max_processors: int = 0

    def merge(self, other: "PRAMStats") -> None:
        """Fold a sub-computation's cost into this one (sequential composition)."""
        self.rounds += other.rounds
        self.work += other.work
        self.max_processors = max(self.max_processors, other.max_processors)


@dataclass
class PRAM:
    """EREW PRAM cost accountant.

    Args:
        check_erew: when True, :meth:`access` raises
            :class:`ModelViolationError` if a round's declared read or
            write address set contains duplicates (concurrent access).
            Costs an ``O(m log m)`` host-side sort per declaration, so
            tests enable it and benches leave it off.
    """

    check_erew: bool = False
    stats: PRAMStats = field(default_factory=PRAMStats)

    def charge(self, *, rounds: int = 1, work: int = 0, processors: int = 0) -> None:
        """Charge ``rounds`` parallel steps of ``work`` total operations."""
        if rounds < 0 or work < 0:
            raise ValueError("cost components must be non-negative")
        self.stats.rounds += rounds
        self.stats.work += work
        self.stats.max_processors = max(self.stats.max_processors, processors)

    def charge_parallel(self, elements: int) -> None:
        """Charge one round touching ``elements`` cells with one processor each."""
        self.charge(rounds=1, work=elements, processors=elements)

    def access(
        self,
        reads: Optional[np.ndarray] = None,
        writes: Optional[np.ndarray] = None,
        *,
        what: str = "round",
    ) -> None:
        """Declare one round's memory footprint for EREW validation.

        ``reads``/``writes`` are integer cell addresses (any dtype). A
        duplicate inside either set means two processors touched the
        same cell in the same round — an EREW violation.
        """
        if not self.check_erew:
            return
        for name, addrs in (("read", reads), ("write", writes)):
            if addrs is None:
                continue
            flat = np.asarray(addrs).reshape(-1)
            if flat.size != np.unique(flat).size:
                raise ModelViolationError(
                    f"EREW violation in {what}: duplicate {name} address"
                )

    def fork(self) -> "PRAM":
        """Accountant for a sub-computation (merge back with :meth:`join`)."""
        return PRAM(check_erew=self.check_erew)

    def join(self, child: "PRAM") -> None:
        """Sequentially compose a sub-computation's cost into this one."""
        self.stats.merge(child.stats)
