"""PRAM substrate and the paper's Sections 3-4 parallel algorithms.

* :class:`PRAM` — round/work-accounting EREW machine model;
* :func:`parallel_prefix` / :func:`parallel_merge` /
  :func:`parallel_merge_sort` — the primitives;
* :func:`pram_exact_sum` — the fast algorithm (Theorem 2);
* :func:`condition_sensitive_sum` — the C(X)-sensitive algorithm
  (Theorem 4);
* :func:`sets_equal_by_summation` — the lower-bound reduction.
"""

from repro.pram.cole import ColeSortStats, cole_merge_sort
from repro.pram.condition_sensitive import (
    ConditionSensitiveResult,
    condition_sensitive_sum,
)
from repro.pram.fast_sum import PRAMSumResult, pram_carry_propagate, pram_exact_sum
from repro.pram.lower_bound import (
    set_equality_instance,
    sets_equal_by_summation,
    tau_for,
)
from repro.pram.machine import PRAM, PRAMStats
from repro.pram.primitives import (
    parallel_compact,
    parallel_merge,
    parallel_merge_sort,
    parallel_prefix,
    parallel_reduce,
)

__all__ = [
    "ColeSortStats",
    "cole_merge_sort",
    "ConditionSensitiveResult",
    "condition_sensitive_sum",
    "PRAMSumResult",
    "pram_carry_propagate",
    "pram_exact_sum",
    "set_equality_instance",
    "sets_equal_by_summation",
    "tau_for",
    "PRAM",
    "PRAMStats",
    "parallel_compact",
    "parallel_merge",
    "parallel_merge_sort",
    "parallel_prefix",
    "parallel_reduce",
]
