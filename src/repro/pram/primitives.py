"""Work-efficient EREW PRAM primitives with cost accounting.

Everything the Section 3/4 algorithms need:

* :func:`parallel_prefix` — Blelloch's two-sweep scan: ``O(log n)``
  rounds, ``O(n)`` work (used for duplicate removal, list compaction
  and the signed-carry propagation of §3 step 6);
* :func:`parallel_reduce` — balanced-tree reduction;
* :func:`parallel_merge` — rank-based merge of two sorted arrays:
  ``O(log n)`` rounds, ``O(n log n)`` work (binary search per element);
* :func:`parallel_merge_sort` — level-by-level merge sort over keys.

Each primitive takes the :class:`~repro.pram.machine.PRAM` accountant
first and performs real data movement with NumPy while charging model
cost. See DESIGN.md §5.4 for the level-by-level-vs-cascading caveat on
the sort's round count.
"""

from __future__ import annotations

import math
from typing import Callable, List, Tuple

import numpy as np

from repro.pram.machine import PRAM

__all__ = [
    "parallel_prefix",
    "parallel_reduce",
    "parallel_compact",
    "parallel_merge",
    "parallel_merge_sort",
]


def _ceil_log2(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


def parallel_prefix(
    machine: PRAM,
    values: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    *,
    inclusive: bool = True,
) -> np.ndarray:
    """Blelloch scan: prefix combination under an associative ``op``.

    ``O(log n)`` rounds, ``O(n)`` work, EREW (up-sweep and down-sweep
    touch disjoint cells per round). ``op`` must be associative and is
    applied to whole arrays (vectorized).
    """
    arr = np.asarray(values)
    n = arr.shape[0]
    if n == 0:
        return arr.copy()
    # Pad to a power of two so the tree sweeps are uniform.
    size = 1 << _ceil_log2(n) if n > 1 else 1
    if op is np.add:
        identity = np.zeros(arr.shape[1:], dtype=arr.dtype)
    else:
        op_identity = getattr(op, "identity", None)
        if op_identity is None:
            raise ValueError("custom ops must expose an `identity` attribute")
        identity = np.asarray(op_identity, dtype=arr.dtype)
    tree = np.empty((size,) + arr.shape[1:], dtype=arr.dtype)
    tree[:] = identity
    tree[:n] = arr
    # Up-sweep.
    stride = 1
    while stride < size:
        left = tree[stride - 1 :: 2 * stride]
        right = tree[2 * stride - 1 :: 2 * stride]
        machine.access(
            reads=np.arange(stride - 1, size, 2 * stride),
            writes=np.arange(2 * stride - 1, size, 2 * stride),
            what="scan up-sweep",
        )
        machine.charge_parallel(right.shape[0])
        tree[2 * stride - 1 :: 2 * stride] = op(left, right)
        stride *= 2
    total = tree[-1].copy()
    # Down-sweep (exclusive scan).
    tree[-1] = identity
    stride = size // 2
    while stride >= 1:
        left_idx = np.arange(stride - 1, size, 2 * stride)
        right_idx = np.arange(2 * stride - 1, size, 2 * stride)
        machine.access(reads=right_idx, writes=left_idx, what="scan down-sweep")
        machine.charge_parallel(right_idx.shape[0])
        left = tree[left_idx].copy()
        tree[left_idx] = tree[right_idx]
        tree[right_idx] = op(tree[right_idx], left)
        stride //= 2
    exclusive = tree[:n]
    if not inclusive:
        return exclusive.copy()
    machine.charge_parallel(n)
    return op(exclusive, arr)


def parallel_reduce(
    machine: PRAM,
    values: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
):
    """Balanced binary-tree reduction: ``O(log n)`` rounds, ``O(n)`` work."""
    arr = np.asarray(values).copy()
    if arr.shape[0] == 0:
        if op is np.add:
            return arr.dtype.type(0)
        raise ValueError("cannot reduce an empty array without an identity")
    while arr.shape[0] > 1:
        half = arr.shape[0] // 2
        machine.charge_parallel(half)
        combined = op(arr[: 2 * half : 2], arr[1 : 2 * half : 2])
        if arr.shape[0] % 2:
            combined = np.concatenate([combined, arr[-1:]])
        arr = combined
    return arr[0]


def parallel_compact(
    machine: PRAM, values: np.ndarray, keep: np.ndarray
) -> np.ndarray:
    """Stable compaction of ``values[keep]`` via an exclusive prefix sum.

    The §3 step 4 duplicate-removal pattern: ``O(log n)`` rounds,
    ``O(n)`` work.
    """
    arr = np.asarray(values)
    mask = np.asarray(keep, dtype=np.int64)
    if arr.shape[0] == 0:
        return arr.copy()
    offsets = parallel_prefix(machine, mask, inclusive=False)
    machine.charge_parallel(arr.shape[0])
    out_n = int(offsets[-1] + mask[-1])
    out = np.empty(out_n, dtype=arr.dtype)
    sel = mask.astype(bool)
    machine.access(writes=offsets[sel], what="compact scatter")
    out[offsets[sel]] = arr[sel]
    return out


def parallel_merge(
    machine: PRAM, a: np.ndarray, b: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-based merge of two sorted arrays.

    Every element binary-searches its rank in the other array (``O(log
    m)`` rounds since searches proceed in lockstep; ``O(m log m)``
    work), then scatters to ``own_rank + cross_rank``. Returns
    ``(merged, pos_a, pos_b)`` where ``pos_a[i]`` is the output slot of
    ``a[i]`` — the cross-links §3 step 3 keeps between a node's list
    and its children's.

    Ties are broken toward ``a`` (stable left-priority), which makes
    the output positions unique — the EREW scatter requirement.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    la, lb = a.shape[0], b.shape[0]
    depth = _ceil_log2(max(la + lb, 2))
    machine.charge(rounds=depth, work=(la + lb) * depth, processors=la + lb)
    rank_a = np.searchsorted(b, a, side="left")  # b-elements strictly before
    rank_b = np.searchsorted(a, b, side="right")  # a-elements at-or-before
    pos_a = np.arange(la) + rank_a
    pos_b = np.arange(lb) + rank_b
    merged = np.empty(la + lb, dtype=np.result_type(a, b))
    machine.access(writes=np.concatenate([pos_a, pos_b]), what="merge scatter")
    machine.charge_parallel(la + lb)
    merged[pos_a] = a
    merged[pos_b] = b
    return merged, pos_a, pos_b


def parallel_merge_sort(machine: PRAM, keys: np.ndarray) -> np.ndarray:
    """Sort by repeated pairwise :func:`parallel_merge`, level by level.

    ``O(log^2 n)`` rounds / ``O(n log n)`` work as simulated. The paper
    reaches ``O(log n)`` rounds for the same work via cascading
    divide-and-conquer [Atallah-Cole-Goodrich]; the work bound — the
    quantity Theorem 2's optimality argument is about — is identical.
    """
    runs: List[np.ndarray] = [np.asarray(keys[i : i + 1]) for i in range(keys.shape[0])]
    if not runs:
        return np.asarray(keys).copy()
    while len(runs) > 1:
        nxt: List[np.ndarray] = []
        # All merges of one level run concurrently on the model machine:
        # the level's round count is the *max* over its merges, its work
        # the sum — account them on per-merge children and fold by hand.
        level_rounds = 0
        level_work = 0
        level_procs = 0
        for i in range(0, len(runs) - 1, 2):
            child = machine.fork()
            merged, _, _ = parallel_merge(child, runs[i], runs[i + 1])
            nxt.append(merged)
            level_rounds = max(level_rounds, child.stats.rounds)
            level_work += child.stats.work
            level_procs += child.stats.max_processors
        if len(runs) % 2:
            nxt.append(runs[-1])
        machine.charge(rounds=level_rounds, work=level_work, processors=level_procs)
        runs = nxt
    return runs[0]
