"""The fast PRAM summation algorithm (paper Section 3, Theorem 2).

Pipeline, with each step's model cost charged to a
:class:`~repro.pram.machine.PRAM` accountant:

1. build the ``ceil(log n)``-depth summation tree over the inputs
   (implicit; the level lists below *are* the tree);
2. convert each leaf to an (alpha, beta)-regularized sparse
   superaccumulator — O(1) time, O(n) work;
3.-5. bottom-up merge of the children's exponent lists with the
   carry-free component sum at every internal node. Merging a level is
   rank-based parallel merging (all nodes concurrently: round cost is
   the level max, work the level sum); the duplicate handling of step 4
   is the unique-position combine inside
   :meth:`SparseSuperaccumulator.add`;
6. propagate signed carries at the root by a parallel-prefix
   composition of the per-position carry lookup maps ("a simple lookup
   table based on whether the input carry bit is a -1, 0, or 1");
7. round the non-overlapping result to a float.

The simulated round count is ``O(log^2 n)`` because step 3 merges level
by level instead of cascading (see DESIGN.md §5.4); total work is the
Theorem 2 bound ``O(n log n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.rounding import round_digits
from repro.errors import CertificationError
from repro.kernels import SumKernel, get_kernel
from repro.pram.machine import PRAM, PRAMStats
from repro.pram.primitives import parallel_prefix
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["pram_exact_sum", "pram_carry_propagate", "PRAMSumResult"]


@dataclass
class PRAMSumResult:
    """Outcome of a PRAM summation run.

    Attributes:
        value: the faithfully (correctly) rounded float sum.
        stats: the machine cost (rounds / work / processor width).
        root_active: active component count of the root accumulator —
            the ``sigma(n)`` the external-memory section reasons about.
        partial: wire frame of the root accumulator, so exact-fraction
            reductions (:mod:`repro.reduce`) can read the exact term
            sum back instead of only the rounded float.
    """

    value: float
    stats: PRAMStats
    root_active: int
    partial: Optional[bytes] = None


class _CarryCompose:
    """Composition of carry lookup maps, for :func:`parallel_prefix`.

    A map is a length-3 int64 row ``m`` with ``m[c + 1]`` the carry-out
    for carry-in ``c in {-1, 0, 1}``; composition applies the earlier
    map first.
    """

    identity = np.array([-1, 0, 1], dtype=np.int64)

    def __call__(self, earlier: np.ndarray, later: np.ndarray) -> np.ndarray:
        return np.take_along_axis(later, earlier + 1, axis=1)


def pram_carry_propagate(
    machine: PRAM, dense_digits: np.ndarray, radix: RadixConfig = DEFAULT_RADIX
) -> np.ndarray:
    """Section 3 step 6 as a parallel prefix: regularized -> non-overlapping.

    Each position's carry-out is a monotone function of its carry-in
    taking values in ``{-1, 0, 1}``; those per-position lookup tables
    compose associatively, so an exclusive Blelloch scan delivers every
    carry-in in ``O(log m)`` rounds and ``O(m)`` work. Output digits lie
    in the balanced non-redundant range ``[-R/2, R/2 - 1]`` and gain one
    top position for the final carry.
    """
    d = np.asarray(dense_digits, dtype=np.int64)
    if d.size == 0:
        return np.zeros(1, dtype=np.int64)
    w = radix.w
    half = np.int64(radix.R >> 1)
    # Per-position lookup tables: carry_out(c) = floor((d + c + R/2)/R).
    cin = np.array([-1, 0, 1], dtype=np.int64)
    machine.charge_parallel(d.size)
    tables = (d[:, None] + cin[None, :] + half) >> np.int64(w)
    carry_in_maps = parallel_prefix(
        machine, tables, op=_CarryCompose(), inclusive=False
    )
    carries_in = carry_in_maps[:, 1]  # evaluate composed prefix at c = 0
    machine.charge_parallel(d.size)
    tot = d + carries_in
    rem = ((tot + half) % np.int64(radix.R)) - half
    final_carry = (tot[-1] - rem[-1]) >> np.int64(w)
    out = np.empty(d.size + 1, dtype=np.int64)
    out[:-1] = rem
    out[-1] = final_carry
    return out


def _merge_level(machine: PRAM, nodes: List, kernel: SumKernel) -> List:
    """Sum adjacent node pairs; charge level cost as (max rounds, sum work)."""
    nxt: List = []
    level_rounds = 0
    level_work = 0
    level_procs = 0
    for i in range(0, len(nodes) - 1, 2):
        a, b = nodes[i], nodes[i + 1]
        m = kernel.width(a) + kernel.width(b)
        merged = kernel.combine(a, b)
        # Cost model: rank-based merge of the two exponent lists
        # (O(log m) rounds, O(m log m) work via per-element binary
        # search — Lemma 3) plus the O(1)-depth carry-free digit sum.
        depth = max(1, math.ceil(math.log2(max(m, 2))))
        level_rounds = max(level_rounds, depth + 1)
        level_work += m * depth + m
        level_procs += max(m, 1)
        nxt.append(merged)
    if len(nodes) % 2:
        nxt.append(nodes[-1])
    machine.charge(rounds=level_rounds, work=level_work, processors=level_procs)
    return nxt


def pram_exact_sum(
    values: Iterable[float],
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    machine: Optional[PRAM] = None,
    mode: str = "nearest",
    cascade: bool = False,
    kernel: Optional[SumKernel] = None,
) -> PRAMSumResult:
    """Faithfully rounded sum on the simulated EREW PRAM (Theorem 2).

    Args:
        values: finite float64 inputs (the leaves of the tree).
        radix: digit configuration of the superaccumulators.
        kernel: the :class:`~repro.kernels.base.SumKernel` whose
            partials live at the tree nodes (default ``"sparse"``, the
            paper's algorithm). Kernels whose root partial exposes
            dense regularized digits run the Section 3 carry-propagate
            finish; others round through the kernel directly, and a
            speculative kernel whose certificate fails reruns the tree
            exactly on the same machine (costs charged twice — a
            retry, never a wrong bit).
        machine: accountant to charge; a fresh one is created (and
            returned in the result) when omitted.
        mode: rounding direction for the final conversion.
        cascade: account step 3 with the pipelined (Cole-style) merge
            sort of :mod:`repro.pram.cole` instead of level-by-level
            merging. With the cascade, every node's sorted exponent
            list (and its cross-ranks) exists after ``O(log n)`` total
            rounds, so the per-level component sums cost O(1) rounds
            each (Lemma 3 with ranks in hand) — the theorem's
            ``O(log n)`` time end to end. Data movement still runs the
            level merges (results are identical); the cascade itself
            genuinely executes too. Note that for binary64 inputs the
            active-component count sigma is format-bounded (~70), so
            level-by-level is already ``O(log n * log sigma)`` and the
            cascade's advantage is a constant; it becomes asymptotic
            exactly when sigma grows with n — the arbitrary-precision
            regime (see :mod:`repro.core.apfloat`), where per-level
            merge depth is ``Theta(log n)`` and cascading is what
            rescues the ``O(log n)`` total.
    """
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    m = machine if machine is not None else PRAM()
    if kernel is None:
        kernel = get_kernel("sparse", radix=radix)
    if mode != "nearest" and not kernel.exact:
        kernel = kernel.exact_variant()

    # Steps 1-2: tree build + leaf conversion (O(1) rounds, O(n) work).
    m.charge(rounds=1, work=int(arr.size), processors=int(arr.size))
    nodes = [kernel.fold_scalar(float(x)) for x in arr]
    m.charge(rounds=1, work=int(arr.size), processors=int(arr.size))

    if not nodes:
        return PRAMSumResult(0.0, m.stats, 0)

    if cascade and not hasattr(nodes[0], "indices"):
        raise ValueError(
            "cascade accounting needs sparse exponent lists; "
            f"kernel {kernel.name!r} has none"
        )
    if cascade and len(nodes) > 1:
        # Step 3 via the pipeline: builds every node's sorted exponent
        # list in O(log n) stages; its rounds/work are charged by the
        # cole machine and folded in here.
        from repro.pram.cole import cole_merge_sort

        keys = np.repeat(
            np.concatenate([acc.indices for acc in nodes if acc.active_count]
                           or [np.zeros(1, dtype=np.int64)]),
            1,
        ).astype(np.float64)
        child = m.fork()
        cole_merge_sort(child, keys, check_cover=False)
        m.join(child)
        # Steps 4-5 with ranks available: O(1) rounds per level.
        while len(nodes) > 1:
            nxt = []
            work = 0
            procs = 0
            for i in range(0, len(nodes) - 1, 2):
                merged = kernel.combine(nodes[i], nodes[i + 1])
                work += kernel.width(merged)
                procs += max(kernel.width(merged), 1)
                nxt.append(merged)
            if len(nodes) % 2:
                nxt.append(nodes[-1])
            m.charge(rounds=1, work=work, processors=procs)
            nodes = nxt
        root = nodes[0]
    else:
        # Steps 3-5: bottom-up carry-free summation, level by level.
        while len(nodes) > 1:
            nodes = _merge_level(m, nodes, kernel)
        root = nodes[0]

    root_width = kernel.width(root)
    if hasattr(root, "to_dense_digits"):
        # Step 6: signed-carry propagation by parallel prefix.
        dense, base = root.to_dense_digits()
        nonoverlap = pram_carry_propagate(m, dense, radix)

        # Step 7: locate the leading component and round (O(log sigma)
        # rounds via a max-reduction; O(sigma) work).
        sigma = int(nonoverlap.size)
        m.charge(
            rounds=max(1, math.ceil(math.log2(max(sigma, 2)))),
            work=sigma,
            processors=sigma,
        )
        value = round_digits(nonoverlap, base, radix, mode)
        return PRAMSumResult(value, m.stats, root_width, kernel.to_wire(root))

    # Kernels without dense regularized digits round directly; a failed
    # certificate reruns the whole tree with the exact kernel, charges
    # accumulating on the same machine.
    sigma = max(1, root_width)
    m.charge(
        rounds=max(1, math.ceil(math.log2(max(sigma, 2)))),
        work=sigma,
        processors=sigma,
    )
    try:
        value = kernel.round(root, mode)
    except CertificationError:
        return pram_exact_sum(
            arr, radix=radix, machine=m, mode=mode, cascade=cascade,
            kernel=kernel.exact_variant(),
        )
    return PRAMSumResult(value, m.stats, root_width, kernel.to_wire(root))
