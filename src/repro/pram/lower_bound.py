"""Theorem 2's lower-bound reduction: set equality -> summation.

The paper proves the ``O(log n)`` time / ``O(n log n)`` work bounds
worst-case optimal by reducing SET-EQUALITY (which has an
``Omega(n log n)`` algebraic-computation-tree lower bound, Ben-Or) to
floating-point summation: map each ``c in C`` to the float ``-2**(tau
c)`` and each ``d in D`` to ``+2**(tau d)`` with ``tau`` the smallest
power of two exceeding ``log2 n``; then ``C == D`` (as multisets) iff
the exact sum is zero — any unmatched exponent survives because two
distinct exponents differ by more than ``log2 n``, so no ``n``-fold
pile-up of smaller terms can cancel a larger one.

Implemented as an executable construction: it doubles as a correctness
stress (the instances are maximally cancelling) and as the
documentation of the optimality argument.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.core.exact import exact_sum_scaled

__all__ = ["set_equality_instance", "sets_equal_by_summation", "tau_for"]


def tau_for(n: int) -> int:
    """Smallest power of two strictly greater than ``log2 n``."""
    if n < 1:
        raise ValueError("n must be positive")
    log = math.log2(n) if n > 1 else 0.0
    tau = 1
    while tau <= log:
        tau *= 2
    return tau


def set_equality_instance(
    c: Sequence[int], d: Sequence[int]
) -> Tuple[np.ndarray, int]:
    """Build the summation instance encoding ``multiset(c) == multiset(d)``.

    Returns ``(values, tau)``; ``values`` holds ``-2**(tau*ci)`` and
    ``+2**(tau*di)``. Elements must be non-negative integers small
    enough that ``tau * max(element) <= 1023`` (the binary64 exponent
    ceiling); larger universes would need the arbitrary-precision
    format the paper's analysis allows.
    """
    c_arr = np.asarray(list(c), dtype=np.int64)
    d_arr = np.asarray(list(d), dtype=np.int64)
    n = int(c_arr.size + d_arr.size)
    tau = tau_for(max(n, 1))
    hi = int(max(c_arr.max(initial=0), d_arr.max(initial=0)))
    lo = int(min(c_arr.min(initial=0), d_arr.min(initial=0)))
    if lo < 0:
        raise ValueError("set elements must be non-negative")
    if tau * hi > 1023:
        raise ValueError(
            f"element {hi} needs exponent {tau * hi} > 1023; universe too large "
            "for binary64 (use a wider format)"
        )
    values = np.concatenate(
        [
            -np.ldexp(1.0, (tau * c_arr).astype(np.int32)),
            np.ldexp(1.0, (tau * d_arr).astype(np.int32)),
        ]
    )
    return values, tau


def sets_equal_by_summation(c: Iterable[int], d: Iterable[int]) -> bool:
    """Decide multiset equality via one exact summation (the reduction)."""
    c_list = list(c)
    d_list = list(d)
    if len(c_list) != len(d_list):
        return False
    if not c_list:
        return True
    values, _ = set_equality_instance(c_list, d_list)
    v, _shift = exact_sum_scaled(values)
    return v == 0
