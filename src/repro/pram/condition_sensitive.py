"""The condition-number-sensitive PRAM algorithm (Section 4, Theorem 4).

Runs the bottom-up tree summation with *r-truncated* sparse
superaccumulators, starting from ``r = 2``: each partial sum keeps only
its ``r`` most significant active components, capping per-merge cost at
``O(r)``. After the tree pass, a **stopping condition** certifies that
everything truncated is too small to affect the faithful rounding; if
it fails, ``r`` is squared and the computation repeats. The iteration
count is ``O(log log log C(X))`` and the total work a geometric series
summing to ``O(n log C(X))``.

The returned trace exposes per-iteration ``r``, work, and the stopping
verdict so the THM4 bench can plot work against the measured condition
number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.core.digits import DEFAULT_RADIX, RadixConfig
from repro.core.truncated import (
    TruncatedSparseSuperaccumulator,
    stopping_condition_addtwo,
    stopping_condition_exponent,
)
from repro.pram.machine import PRAM, PRAMStats
from repro.util.validation import check_finite_array, ensure_float64_array

__all__ = ["condition_sensitive_sum", "ConditionSensitiveResult"]

_CONDITIONS = ("addtwo", "exponent")


@dataclass
class IterationTrace:
    """One ``r``-iteration of the algorithm."""

    r: int
    work: int
    rounds: int
    truncated: bool
    stopped: bool


@dataclass
class ConditionSensitiveResult:
    """Outcome of :func:`condition_sensitive_sum`.

    Attributes:
        value: faithfully rounded sum.
        stats: total machine cost over all iterations.
        iterations: per-iteration trace (length is the
            ``O(log log log C(X))`` quantity of Theorem 4).
    """

    value: float
    stats: PRAMStats
    iterations: List[IterationTrace] = field(default_factory=list)


def _tree_pass(
    machine: PRAM,
    arr,
    r: int,
    radix: RadixConfig,
) -> TruncatedSparseSuperaccumulator:
    """One bottom-up truncated summation; charges level-max costs."""
    nodes = [
        TruncatedSparseSuperaccumulator.from_float(float(x), r, radix) for x in arr
    ]
    machine.charge(rounds=1, work=len(nodes), processors=len(nodes))
    if not nodes:
        return TruncatedSparseSuperaccumulator(r, radix)
    while len(nodes) > 1:
        nxt: List[TruncatedSparseSuperaccumulator] = []
        level_rounds = 0
        level_work = 0
        level_procs = 0
        for i in range(0, len(nodes) - 1, 2):
            a, b = nodes[i], nodes[i + 1]
            m = min(a.acc.active_count + b.acc.active_count, 2 * r)
            nxt.append(a.add(b))
            depth = max(1, math.ceil(math.log2(max(m, 2))))
            level_rounds = max(level_rounds, depth + 1)
            level_work += m * depth + m
            level_procs += max(m, 1)
        if len(nodes) % 2:
            nxt.append(nodes[-1])
        machine.charge(rounds=level_rounds, work=level_work, processors=level_procs)
        nodes = nxt
    return nodes[0]


def condition_sensitive_sum(
    values: Iterable[float],
    *,
    radix: RadixConfig = DEFAULT_RADIX,
    machine: Optional[PRAM] = None,
    condition: str = "addtwo",
    initial_r: int = 2,
) -> ConditionSensitiveResult:
    """Faithfully rounded sum with condition-sensitive work (Theorem 4).

    Args:
        values: finite float64 inputs.
        radix: superaccumulator digit configuration.
        machine: PRAM accountant (fresh if omitted).
        condition: which sufficient stopping condition to test —
            ``"addtwo"`` (the float form) or ``"exponent"`` (the
            simplified exponent-gap form).
        initial_r: starting truncation parameter (paper: 2).

    The final iteration is always safe: once ``r`` reaches the full
    untruncated width, the tree pass is exact and ``truncated`` is
    False, which stops unconditionally.
    """
    if condition not in _CONDITIONS:
        raise ValueError(f"condition must be one of {_CONDITIONS}")
    arr = ensure_float64_array(values)
    check_finite_array(arr)
    m = machine if machine is not None else PRAM()
    n = int(arr.size)
    if n == 0:
        return ConditionSensitiveResult(0.0, m.stats, [])

    check = (
        stopping_condition_addtwo if condition == "addtwo" else stopping_condition_exponent
    )
    r = max(2, int(initial_r))
    trace: List[IterationTrace] = []
    while True:
        before_rounds = m.stats.rounds
        before_work = m.stats.work
        root = _tree_pass(m, arr, r, radix)
        y = root.to_float()
        if not root.truncated:
            stopped = True  # exact: nothing was ever dropped
        else:
            stopped = check(y, n, root.least_retained_exponent)
        trace.append(
            IterationTrace(
                r=r,
                work=m.stats.work - before_work,
                rounds=m.stats.rounds - before_rounds,
                truncated=root.truncated,
                stopped=stopped,
            )
        )
        if stopped:
            return ConditionSensitiveResult(y, m.stats, trace)
        r = r * r
