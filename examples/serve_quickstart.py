"""Serving quickstart: a sharded exact-summation service end to end.

Starts the TCP server in-process, then demonstrates the full client
surface: wire negotiation (``--wire json|binary``), a round-trip, a
1k-request concurrent burst of an ill-conditioned dataset shipped as
numpy batches (asserted bit-identical to the serial exact sum),
snapshot/restore persistence, stats, and a clean shutdown. On the
binary wire each batch rides a codec ``BBAT`` frame of raw float64
bytes; on JSON-lines the same calls box through ``add_array`` — the
result is bit-identical either way. Doubles as the CI service smoke
test, run once per wire mode.
"""

from __future__ import annotations

import argparse
import asyncio

import numpy as np

from repro.core import exact_sum
from repro.data import generate
from repro.serve import ReproServeClient, ReproServer, ReproService, ServeConfig


async def main(wire: str) -> None:
    service = ReproService(ServeConfig(shards=4, queue_depth=256))
    await service.start()
    server = ReproServer(service, port=0)  # ephemeral port
    await server.start()
    print(f"serving on 127.0.0.1:{server.port} (4 shards)")

    # -- round-trip ------------------------------------------------------
    client = await ReproServeClient.connect(port=server.port, wire=wire)
    assert client.wire == wire, f"negotiated {client.wire}, wanted {wire}"
    print(f"negotiated wire: {client.wire}")
    await client.add_batch("demo", np.array([1e16, 1.0, -1e16]))
    value = await client.value("demo")
    print(f"round-trip: 1e16 + 1.0 - 1e16 = {value}")
    assert value == 1.0  # float accumulation would give 0.0

    # -- 1k-request concurrent burst, exactness asserted -----------------
    data = generate("sumzero", 64_000, delta=600, seed=3)
    expected = exact_sum(data)
    chunks = np.array_split(data, 1000)  # 1000 numpy batch requests

    async def producer(part_chunks) -> None:
        c = await ReproServeClient.connect(port=server.port, wire=wire)
        for chunk in part_chunks:
            # numpy batch API: one frame per array — a codec BBAT frame
            # on the binary wire, an add_array op on JSON-lines
            await c.add_batch("burst", chunk)
        await c.close()

    producers = [producer(chunks[i::8]) for i in range(8)]
    await asyncio.gather(*producers)
    got = await client.value("burst")
    count = await client.count("burst")
    print(f"burst: 1000 requests from 8 clients, n={count:,}, sum={got!r}")
    assert got == expected and got.hex() == expected.hex()
    assert count == data.size

    # -- snapshot / restore ---------------------------------------------
    blob = await client.snapshot("burst")
    await client.restore("burst-copy", blob)
    assert await client.value("burst-copy") == expected
    print(f"snapshot: {len(blob)} bytes round-trips bit-identically")

    # -- service metrics -------------------------------------------------
    stats = await client.stats()
    print(
        f"stats: {stats['requests_total']} requests, "
        f"{stats['batches_folded']} folds, "
        f"mean batch {stats['mean_batch_values']:.0f} values, "
        f"p99 {stats['latency_p99_ms']:.2f} ms"
    )
    wire_stats = stats["wire"].get(wire, {})
    print(
        f"wire[{wire}]: {wire_stats.get('frames', 0)} value frames, "
        f"{wire_stats.get('values', 0):,} values, "
        f"{wire_stats.get('payload_bytes', 0):,} payload bytes"
    )
    assert wire_stats.get("values", 0) >= data.size

    # -- clean shutdown --------------------------------------------------
    resp = await client.shutdown()
    assert resp["stopping"] is True
    await server.serve_forever()  # returns immediately: stop already requested
    await client.close()
    await service.close()
    print("clean shutdown OK")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--wire",
        choices=("json", "binary"),
        default="binary",
        help="wire mode to negotiate (default: binary)",
    )
    asyncio.run(main(parser.parse_args().wire))
