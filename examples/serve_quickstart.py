"""Serving quickstart: a sharded exact-summation service end to end.

Starts the TCP server in-process, then demonstrates the full client
surface: a round-trip, a 1k-request concurrent burst of an
ill-conditioned dataset (asserted bit-identical to the serial exact
sum), snapshot/restore persistence, stats, and a clean shutdown.
Doubles as the CI service smoke test.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core import exact_sum
from repro.data import generate
from repro.serve import ReproServeClient, ReproServer, ReproService, ServeConfig


async def main() -> None:
    service = ReproService(ServeConfig(shards=4, queue_depth=256))
    await service.start()
    server = ReproServer(service, port=0)  # ephemeral port
    await server.start()
    print(f"serving on 127.0.0.1:{server.port} (4 shards)")

    # -- round-trip ------------------------------------------------------
    client = await ReproServeClient.connect(port=server.port)
    await client.add_array("demo", [1e16, 1.0, -1e16])
    value = await client.value("demo")
    print(f"round-trip: 1e16 + 1.0 - 1e16 = {value}")
    assert value == 1.0  # float accumulation would give 0.0

    # -- 1k-request concurrent burst, exactness asserted -----------------
    data = generate("sumzero", 64_000, delta=600, seed=3)
    expected = exact_sum(data)
    chunks = np.array_split(data, 1000)  # 1000 add_array requests

    async def producer(part_chunks) -> None:
        c = await ReproServeClient.connect(port=server.port)
        for chunk in part_chunks:
            await c.add_array("burst", chunk)
        await c.close()

    producers = [producer(chunks[i::8]) for i in range(8)]
    await asyncio.gather(*producers)
    got = await client.value("burst")
    count = await client.count("burst")
    print(f"burst: 1000 requests from 8 clients, n={count:,}, sum={got!r}")
    assert got == expected and got.hex() == expected.hex()
    assert count == data.size

    # -- snapshot / restore ---------------------------------------------
    blob = await client.snapshot("burst")
    await client.restore("burst-copy", blob)
    assert await client.value("burst-copy") == expected
    print(f"snapshot: {len(blob)} bytes round-trips bit-identically")

    # -- service metrics -------------------------------------------------
    stats = await client.stats()
    print(
        f"stats: {stats['requests_total']} requests, "
        f"{stats['batches_folded']} folds, "
        f"mean batch {stats['mean_batch_values']:.0f} values, "
        f"p99 {stats['latency_p99_ms']:.2f} ms"
    )

    # -- clean shutdown --------------------------------------------------
    resp = await client.shutdown()
    assert resp["stopping"] is True
    await server.serve_forever()  # returns immediately: stop already requested
    await client.close()
    await service.close()
    print("clean shutdown OK")


if __name__ == "__main__":
    asyncio.run(main())
