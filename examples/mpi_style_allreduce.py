#!/usr/bin/env python
"""MPI-style exact allreduce: reproducible global sums for HPC codes.

How an MPI simulation would consume this library: each rank holds a
shard of a global quantity (energies, residuals, fluxes) and the
collective must deliver the **same, correct** total to every rank.
Plain ``MPI_Allreduce(MPI_SUM)`` results depend on the reduction tree —
rerun on a different node count and the trajectory of your simulation
diverges. The exact allreduce (recursive doubling over serialized
sparse superaccumulators, ``O(log P)`` rounds) is schedule-independent
by construction.

Run: ``python examples/mpi_style_allreduce.py``
"""

from __future__ import annotations

import numpy as np

from repro.bsp import exact_allreduce_sum
from repro.data import generate


def float_allreduce(blocks) -> list:
    """What MPI_SUM does: per-rank partial sums, then a float tree."""
    partials = [float(np.sum(b)) for b in blocks]
    # recursive-doubling with plain float adds
    p = len(partials)
    vals = list(partials)
    k = 1
    while k < p:
        nxt = list(vals)
        for r in range(p):
            partner = r ^ k
            if partner < p:
                nxt[r] = vals[r] + vals[partner]
        vals = nxt
        k <<= 1
    return vals


def main() -> None:
    # a cancellation-heavy global quantity, sharded across ranks
    data = generate("anderson", 400_000, delta=40, seed=11)

    print("float allreduce vs exact allreduce across cluster sizes:\n")
    print(f"{'ranks':>6} {'float result':>26} {'exact result':>26} "
          f"{'steps':>6} {'msgs':>6}")
    float_results = set()
    exact_results = set()
    for p in (2, 3, 8, 16):
        blocks = np.array_split(data, p)
        f = float_allreduce(blocks)[0]
        res = exact_allreduce_sum(blocks)
        assert len(set(res.values)) == 1  # every rank identical
        float_results.add(f)
        exact_results.add(res.values[0])
        print(f"{p:>6} {f!r:>26} {res.values[0]!r:>26} "
              f"{res.supersteps:>6} {res.messages:>6}")

    print(f"\nfloat allreduce produced {len(float_results)} distinct totals "
          f"across cluster sizes")
    print(f"exact allreduce produced {len(exact_results)} distinct total(s) "
          f"— bitwise reproducible at any scale")
    assert len(exact_results) == 1


if __name__ == "__main__":
    main()
