#!/usr/bin/env python
"""Computational geometry with exact summation (a motivating domain).

The paper's abstract names computational geometry as a core application
of exact summation. This example builds two classic predicates on top
of :func:`repro.exact_dot` / :func:`repro.exact_sum` and shows plain
float arithmetic getting both of them wrong:

1. **orientation** — which side of the line AB is point C on? Wrong
   signs here break convex hulls and Delaunay triangulations.
2. **polygon signed area** (the shoelace sum) for a nearly-degenerate
   polygon whose area is tiny compared to its coordinates.

Run: ``python examples/computational_geometry.py``
"""

from __future__ import annotations

import numpy as np

from repro import exact_sum
from repro.core.eft import two_product
from repro.core.sparse import SparseSuperaccumulator


def orientation_naive(ax, ay, bx, by, cx, cy) -> float:
    """Float determinant (bx-ax)(cy-ay) - (by-ay)(cx-ax)."""
    return (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)


def orientation_exact(ax, ay, bx, by, cx, cy) -> int:
    """Sign of the orientation determinant, computed exactly.

    The four coordinate differences are floats (possibly inexact as
    *differences*, so we expand the determinant over original
    coordinates instead): det = bx*cy - bx*ay - ax*cy
                               - by*cx + by*ax + ay*cx
    Each product is expanded error-free with TwoProduct and the 12-term
    expansion is summed exactly.
    """
    terms = []
    for sgn, u, v in (
        (+1, bx, cy), (-1, bx, ay), (-1, ax, cy),
        (-1, by, cx), (+1, by, ax), (+1, ay, cx),
    ):
        p, e = two_product(float(sgn) * u, v)
        terms.extend((p, e))
    s = exact_sum(np.array(terms))
    return (s > 0) - (s < 0)


def shoelace_naive(pts: np.ndarray) -> float:
    x, y = pts[:, 0], pts[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


def shoelace_exact(pts: np.ndarray) -> float:
    x, y = pts[:, 0], pts[:, 1]
    xn, yn = np.roll(x, -1), np.roll(y, -1)
    terms = []
    for u, v, sgn in ((x, yn, 1.0), (xn, y, -1.0)):
        p = sgn * u * v
        # vectorized TwoProduct residuals
        split = 134217729.0
        cu = split * (sgn * u)
        hi = cu - (cu - sgn * u)
        lo = sgn * u - hi
        cv = split * v
        vhi = cv - (cv - v)
        vlo = v - vhi
        e = ((hi * vhi - p) + hi * vlo + lo * vhi) + lo * vlo
        terms.append(p)
        terms.append(e)
    acc = SparseSuperaccumulator.from_floats(np.concatenate(terms))
    return 0.5 * acc.to_float()


def main() -> None:
    # --- orientation near collinearity ---------------------------------
    # The classic "classroom example" (Kettner et al.): query points in
    # an ulp-grid around a point of the segment (0.5,0.5)-(12,12). The
    # float predicate returns a patchwork of wrong signs; the exact
    # predicate draws the true line.
    bx, by = 12.0, 12.0
    cx, cy = 24.0, 24.0
    print("orientation of (a, (12,12), (24,24)) for a on an ulp-grid "
          "around (0.5, 0.5):")
    wrong = 0
    total = 0
    for i in range(0, 32):
        for j in range(0, 32):
            ax = 0.5 + i * 2.0**-53
            ay = 0.5 + j * 2.0**-53
            # the float predicate rounds bx-ax (ulp(11.5) >> 2**-53)
            naive = orientation_naive(ax, ay, bx, by, cx, cy)
            naive_sign = (naive > 0) - (naive < 0)
            exact = orientation_exact(ax, ay, bx, by, cx, cy)
            total += 1
            if naive_sign != exact:
                wrong += 1
    print(f"  float predicate wrong on {wrong}/{total} grid points; "
          f"exact predicate wrong on 0")
    assert wrong > 0  # the float predicate must fail somewhere here

    # --- shoelace area of a sliver polygon ------------------------------
    # A long thin triangle translated far from the origin: all
    # coordinates are dyadic, so the translation is *exact* in binary64
    # and the true area (2**-21) is unchanged — but the naive shoelace
    # sum cancels catastrophically at large coordinates.
    base = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 2.0**-20]])
    true_area = 2.0**-21
    print(f"\nshoelace area of a sliver triangle (true area = {true_area:.6e}):")
    for shift in (0.0, 2.0**20, 2.0**30):
        pts = base + shift
        a_naive = shoelace_naive(pts)
        a_exact = shoelace_exact(pts)
        print(
            f"  shift=2^{int(np.log2(shift)) if shift else 0:<3d}"
            f"  naive={a_naive:+.6e}  exact={a_exact:+.6e}"
            f"  naive rel-err={abs(a_naive - true_area) / true_area:.2e}"
        )
        assert a_exact == true_area  # exact at every translation
    print("  exact shoelace is translation-invariant bit-for-bit")


if __name__ == "__main__":
    main()
