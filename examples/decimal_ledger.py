#!/usr/bin/env python
"""Base-10 exact summation: a financial-ledger reconciliation.

The paper's footnote 1 notes its algorithms "can easily be modified to
work with other standard floating-point bases, such as 10"; this
example runs that modification (:mod:`repro.core.decimal_acc`) on the
domain where base-10 matters: money. A ledger of millions of postings
at wildly different scales (micro-fees to billion-scale settlements)
must net to exactly zero — and a context-limited ``Decimal`` sum (or
any float sum) misses that, while the carry-free base-10
superaccumulator proves it.

Run: ``python examples/decimal_ledger.py``
"""

from __future__ import annotations

import random
from decimal import Decimal, localcontext

from repro.core.decimal_acc import DecimalSuperaccumulator, exact_decimal_sum


def make_ledger(n_pairs: int, seed: int = 0):
    """Balanced ledger: every posting has an exact counter-posting."""
    rnd = random.Random(seed)
    postings = []
    for _ in range(n_pairs):
        # amounts from micro-fees (1e-6) to settlements (1e9), 2-28 digits
        digits = rnd.randint(1, 20)
        amount = Decimal(rnd.randint(1, 10**digits)).scaleb(rnd.randint(-6, 3))
        postings.append(amount)
        postings.append(-amount)
    rnd.shuffle(postings)
    return postings


def main() -> None:
    ledger = make_ledger(50_000)
    print(f"ledger: {len(ledger):,} postings, "
          f"magnitudes {min(map(abs, ledger))} .. {max(map(abs, ledger))}")

    # a context-limited Decimal sum rounds on every add
    with localcontext() as ctx:
        ctx.prec = 28  # the decimal module's default precision
        naive = Decimal(0)
        for p in ledger:
            naive += p
    print(f"context-28 Decimal sum : {naive}")

    exact = exact_decimal_sum(ledger)
    print(f"exact superaccumulator : {exact}")
    assert exact == 0, "a balanced ledger must net to exactly zero"
    print("ledger reconciles: net is exactly zero\n")

    # streaming usage: day-by-day accumulation, one rounding at the end
    acc = DecimalSuperaccumulator()
    for day in range(0, len(ledger), 10_000):
        for p in ledger[day : day + 10_000]:
            acc = acc.add_decimal(p)
        running = acc.to_decimal(precision=12)
        print(f"  after {min(day + 10_000, len(ledger)):>7,} postings: "
              f"running net = {running}")
    print(f"\nfinal active components: {acc.active_count} "
          f"(the sparse footprint of a 15-decade ledger)")


if __name__ == "__main__":
    main()
