#!/usr/bin/env python
"""Large-scale pipeline: dataset file -> MapReduce -> exact global sum.

The paper's other motivating domain is "large-scale simulations": global
reductions (total energy, total mass, global residual) over huge
distributed arrays, where (a) parallel reduction order changes run to
run, so naive sums are not even reproducible, and (b) cancellation can
make them wrong. This example runs the full production shape:

1. generate a large ill-conditioned dataset and write it to disk in the
   shared binary format;
2. ingest it into the simulated HDFS block store;
3. run the single-round MapReduce summation job (the paper's
   algorithm), reporting per-phase times and shuffle volume;
4. cross-check against the sequential superaccumulator and show the
   reproducibility failure of the naive control job.

Run: ``python examples/large_scale_pipeline.py``
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import SmallSuperaccumulator
from repro.data import generate, iter_blocks, write_dataset
from repro.mapreduce import (
    BlockStore,
    NaiveSumJob,
    SparseSuperaccumulatorJob,
    run_job,
)


def main() -> None:
    n = 2_000_000
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "energies.f64"

        # 1. a cancellation-heavy "simulation output": Anderson's
        # distribution (values minus their mean — think force components
        # that should sum to ~0 around equilibrium)
        print(f"generating {n:,} values (Anderson's ill-conditioned) ...")
        data = generate("anderson", n, delta=60, seed=7)
        write_dataset(path, data)

        # 2. ingest into the block store (simulated HDFS, 2**17-item blocks)
        store = BlockStore(nodes=8, block_items=1 << 17)
        blocks = []
        for block in iter_blocks(path, 1 << 17):
            blocks.append(block)
        store.put("energies", np.concatenate(blocks))
        job_blocks = [b.data for b in store.blocks("energies")]
        print(f"stored as {len(job_blocks)} blocks across {store.nodes} nodes")

        # 3. the paper's MapReduce job
        result = run_job(SparseSuperaccumulatorJob(), job_blocks, reducers=8)
        print("\nMapReduce (sparse superaccumulator):")
        print(f"  global sum     = {result.value!r}")
        for phase, secs in result.phase_seconds.items():
            print(f"  {phase:<12s} {secs * 1e3:9.2f} ms")
        print(f"  shuffle volume = {result.shuffle_bytes:,} bytes "
              f"(input was {8 * n:,} bytes)")

        # 4a. sequential cross-check (streaming, constant memory)
        seq = SmallSuperaccumulator()
        for block in iter_blocks(path, 1 << 17):
            seq.add_array(block)
        assert seq.to_float() == result.value
        print("\nsequential superaccumulator agrees bit-for-bit:", result.value)

        # 4b. the naive control: same job graph, plain float adds.
        naive_a = run_job(NaiveSumJob(), job_blocks, reducers=8).value
        # a different block partitioning = a different reduction order
        store2 = BlockStore(nodes=8, block_items=77_777)
        store2.put("energies", np.concatenate(blocks))
        naive_b = run_job(
            NaiveSumJob(), [b.data for b in store2.blocks("energies")], reducers=8
        ).value
        print("\nnaive float reduction, two block layouts:")
        print(f"  layout A: {naive_a!r}")
        print(f"  layout B: {naive_b!r}")
        print(f"  reproducible: {naive_a == naive_b}; "
              f"equal to exact: {naive_a == result.value}")


if __name__ == "__main__":
    main()
