#!/usr/bin/env python
"""Robust convex hull and Delaunay-style tests on degenerate input.

Shows the `repro.geometry` package (exact predicates on top of exact
summation) surviving the inputs that break float geometry: thousands of
nearly-collinear and nearly-cocircular points. A float-predicate hull
on such data can be non-convex or drop extreme points; the exact hull
is provably the true hull of the given coordinates.

Run: ``python examples/robust_hull.py``
"""

from __future__ import annotations

import numpy as np

from repro.geometry import (
    convex_hull,
    incircle,
    is_convex,
    orient2d,
    polygon_contains,
    signed_area,
)


def float_orient(ax, ay, bx, by, cx, cy) -> int:
    det = float((bx - ax) * (cy - ay) - (by - ay) * (cx - ax))
    return (det > 0) - (det < 0)


def _hull_with(pred, points):
    """Monotone-chain hull parameterized by the orientation predicate."""
    pts = sorted({(float(a), float(b)) for a, b in points})
    if len(pts) <= 2:
        return pts

    def build(seq):
        chain = []
        for p in seq:
            while len(chain) >= 2 and pred(
                chain[-2][0], chain[-2][1], chain[-1][0], chain[-1][1], p[0], p[1]
            ) <= 0:
                chain.pop()
            chain.append(p)
        return chain

    lower = build(pts)
    upper = build(reversed(pts))
    return lower[:-1] + upper[:-1]


def main() -> None:
    rng = np.random.default_rng(1)

    # --- adversarial input: a fat line ----------------------------------
    # points on y = x plus sub-ulp vertical noise, plus a few honest
    # off-line points that must appear on the hull
    n = 2000
    t = np.sort(rng.random(n) * 10)
    noise = rng.integers(-4, 5, n).astype(np.float64) * 2.0**-50
    pts = np.column_stack([t, t + noise])
    extremes = np.array([[5.0, -1.0], [5.0, 11.0]])
    pts = np.vstack([pts, extremes])

    hull = convex_hull(pts)
    print(f"input: {pts.shape[0]:,} points (nearly collinear + 2 extremes)")
    print(f"exact hull: {len(hull)} vertices, convex={is_convex(hull)}, "
          f"area={signed_area(hull):.6f}")
    assert is_convex(hull)
    for e in extremes:
        assert tuple(e) in set(hull), "extreme point missing from hull"
    for p in pts[:: max(1, len(pts) // 200)]:
        assert polygon_contains(hull, p), "hull fails to contain an input"
    print("all inputs verified inside the hull; extremes present\n")

    # --- where the float predicate actually loses points -----------------
    # Kettner et al.'s failure mode: an ulp-grid near (0.5, 0.5) plus
    # two distant anchors on the line y = x. The float-predicate hull
    # collapses grid structure it cannot resolve and *excludes input
    # points*; the exact hull contains everything.
    grid = [(0.5 + i * 2.0**-53, 0.5 + j * 2.0**-53)
            for i in range(6) for j in range(6)]
    tricky = grid + [(12.0, 12.0), (24.0, 24.0)]
    float_hull = _hull_with(float_orient, tricky)
    exact_hull = convex_hull(tricky)
    missing_float = sum(
        0 if (len(float_hull) >= 3 and polygon_contains(float_hull, p)) else 1
        for p in tricky
    )
    missing_exact = sum(0 if polygon_contains(exact_hull, p) else 1 for p in tricky)
    print("ulp-grid + anchors (Kettner's classroom failure):")
    print(f"  float-predicate hull: {len(float_hull)} vertices, "
          f"misses {missing_float}/{len(tricky)} input points")
    print(f"  exact hull          : {len(exact_hull)} vertices, "
          f"misses {missing_exact}/{len(tricky)} input points")
    assert missing_exact == 0 and missing_float > 0
    print()

    # --- near-cocircular in-circle decisions ------------------------------
    # points one ulp inside/outside the unit circle through 3 anchors
    a, b, c = (1.0, 0.0), (0.0, 1.0), (-1.0, 0.0)
    eps = 2.0**-52
    cases = [
        ((0.0, -1.0 + eps), +1, "one ulp inside"),
        ((0.0, -1.0 - eps), -1, "one ulp outside"),
        ((0.0, -1.0), 0, "exactly on the circle"),
    ]
    print("exact in-circle on one-ulp perturbations of the unit circle:")
    for d, want, label in cases:
        got = incircle(a, b, c, d)
        print(f"  {label:<24s} incircle = {got:+d}")
        assert got == want
    print("\nevery decision certified by exact summation")


if __name__ == "__main__":
    main()
