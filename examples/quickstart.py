#!/usr/bin/env python
"""Quickstart: exact floating-point summation in three lines.

Demonstrates the problem (ordinary float summation is order-dependent
and can be arbitrarily wrong under cancellation), the one-call fix
(:func:`repro.exact_sum`), and the knobs: representation choice,
rounding direction, condition-number diagnosis.

Run: ``python examples/quickstart.py``
"""

from __future__ import annotations

import numpy as np

from repro import (
    SparseSuperaccumulator,
    condition_number,
    exact_sum,
    exact_sum_fraction,
)


def main() -> None:
    # --- the problem -------------------------------------------------
    x = np.array([1e16, 1.0, -1e16])
    print("naive np.sum      :", np.sum(x))          # 0.0 — wrong
    print("exact_sum         :", exact_sum(x))       # 1.0 — correct
    print()

    # Order dependence: the same multiset, two float answers.
    rng = np.random.default_rng(0)
    data = (rng.random(100_000) - 0.5) * 10.0 ** rng.integers(-30, 30, 100_000)
    shuffled = data.copy()
    rng.shuffle(shuffled)
    print("np.sum (order A)  :", repr(float(np.sum(data))))
    print("np.sum (order B)  :", repr(float(np.sum(shuffled))))
    print("exact_sum A == B  :", exact_sum(data) == exact_sum(shuffled))
    print()

    # --- representations ----------------------------------------------
    # "sparse" is the paper's carry-free sparse superaccumulator;
    # "small" is the dense Neal-style comparator. Identical results.
    assert exact_sum(data, method="sparse") == exact_sum(data, method="small")

    # Directed rounding brackets the exact value.
    lo = exact_sum(data, mode="down")
    hi = exact_sum(data, mode="up")
    print(f"faithful bracket  : [{lo!r}, {hi!r}]")
    print("exact (Fraction)  :", float(exact_sum_fraction(data)))
    print()

    # --- diagnosing difficulty ----------------------------------------
    # The condition number sum|x| / |sum x| measures cancellation.
    benign = rng.random(1000)
    nasty = np.concatenate([benign, -benign + 1e-12])
    print("C(benign)         :", condition_number(benign))
    print("C(nasty)          :", f"{condition_number(nasty):.3e}")
    print()

    # --- streaming / incremental usage --------------------------------
    acc = SparseSuperaccumulator.zero()
    for chunk in np.array_split(data, 10):
        acc = acc.add(SparseSuperaccumulator.from_floats(chunk))
    print("streaming == bulk :", acc.to_float() == exact_sum(data))
    print("active components :", acc.active_count)


if __name__ == "__main__":
    main()
