"""Cluster quickstart: WAL-backed replicated exact summation, end to end.

Spawns three real node processes (``repro cluster node``), drives them
through the coordinator over TCP, then demonstrates the failure story
the cluster exists for: SIGKILL the stream's primary mid-ingest, keep
ingesting through failover, replay the dead node's write-ahead log,
and read a final sum bit-identical to the serial exact reference.
``--wire json|binary`` pins the coordinator's wire mode; on the
binary wire (the default) each batch ships as a codec ``BBAT`` frame
whose raw float64 payload lands verbatim in the node's WAL, so the
replay below re-folds the very bytes the clients sent. Doubles as the
CI cluster smoke test, run once per wire mode.
"""

from __future__ import annotations

import argparse
import asyncio
import tempfile
from pathlib import Path

import numpy as np

from repro.cluster import ClusterCoordinator, RemoteNodeHandle, spawn_local_cluster
from repro.core import exact_sum
from repro.data import generate


async def main(wire: str) -> None:
    data = generate("sumzero", 20_000, delta=500, seed=21)
    expected = exact_sum(data)
    batches = np.array_split(data, 40)

    with tempfile.TemporaryDirectory(prefix="repro-cluster-demo-") as tmp:
        # -- spawn 3 node processes with WALs under tmp ------------------
        procs = spawn_local_cluster(3, tmp, shards=2)
        by_id = {p.node_id: p for p in procs}
        handles = [
            RemoteNodeHandle(p.node_id, p.host, p.port, wire=wire)
            for p in procs
        ]
        coordinator = ClusterCoordinator(handles, replication=2)
        for p in procs:
            print(f"spawned {p.node_id} on {p.host}:{p.port} "
                  f"(wal={Path(p.wal).name}, wire={wire})")

        try:
            # -- replicated ingest, first half ---------------------------
            for batch in batches[:20]:
                await coordinator.append("ledger", batch)
            placement = coordinator._placement("ledger")
            print(f"placement: primary={placement.primary} "
                  f"replicas={list(placement.replicas)} epoch={placement.epoch}")

            # -- SIGKILL the primary mid-ingest --------------------------
            victim = placement.primary
            by_id[victim].kill()
            print(f"killed {victim} (SIGKILL — no flush, no goodbye)")

            # ingest continues: the coordinator fails over and retries,
            # sequence numbers dedup any member that already applied
            for batch in batches[20:]:
                await coordinator.append("ledger", batch)
            print(f"ingest finished through failover "
                  f"(failovers={coordinator.failovers})")

            # -- replay the dead node's WAL onto the survivors -----------
            replay = await coordinator.replay_wal_onto(by_id[victim].wal)
            print(f"WAL replay: {replay['records']} records, "
                  f"{replay['duplicates']} already held, "
                  f"{replay['applied']} healed")

            # -- the read is bit-identical to the serial exact sum -------
            got = await coordinator.value("ledger")
            print(f"sum = {got['value']!r} from {got['node']} "
                  f"(count={got['count']:,})")
            assert got["value"] == expected
            assert got["value"].hex() == expected.hex()
            assert got["count"] == data.size

            # -- scatter/gather: striped ingest, exact recombination -----
            await coordinator.scatter("stripe", data, chunk=1024)
            gathered = await coordinator.gather_value("stripe")
            assert gathered["value"] == expected
            print(f"scatter/gather across {gathered['nodes']} nodes "
                  f"recombines bit-identically")

            # -- cold restart: a node rebuilt from its WAL alone ---------
            # The victim's WAL holds exactly the batches it acked before
            # dying; recovery must reconstruct that prefix bit-exactly.
            prefix = np.concatenate(batches[:20])
            spec = by_id[victim].restart()
            fresh = RemoteNodeHandle(spec.node_id, spec.host, spec.port, wire=wire)
            info = await fresh.request("cluster_info")
            resp = await fresh.request("value", stream="ledger")
            await fresh.close()
            print(f"{victim} restarted from WAL: count={resp['count']:,}, "
                  f"applied={info['applied']}")
            assert resp["count"] == prefix.size
            assert resp["value"] == exact_sum(prefix)

            print("cluster quickstart OK")
        finally:
            await coordinator.close()
            for p in procs:
                p.terminate()


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--wire",
        choices=("json", "binary"),
        default="binary",
        help="coordinator wire mode (default: binary)",
    )
    asyncio.run(main(parser.parse_args().wire))
