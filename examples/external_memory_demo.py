#!/usr/bin/env python
"""External-memory summation with live I/O accounting (§5).

Walks both Theorem 5 (sorting-based, works for any internal memory) and
Theorem 6 (scan-based, needs the superaccumulator resident) on the
simulated block device, printing measured I/O counts next to the
closed-form ``sort(n)``/``scan(n)`` bounds, and demonstrating the
memory boundary between the two regimes.

Run: ``python examples/external_memory_demo.py``
"""

from __future__ import annotations

import numpy as np

from repro.data import generate
from repro.errors import ModelViolationError
from repro.extmem import (
    BlockDevice,
    ExtArray,
    extmem_sum_scan,
    extmem_sum_sorted,
    scan_bound,
    sum_sorted_bound,
)


def main() -> None:
    n = 50_000
    B = 256
    x = generate("random", n, delta=800, seed=5)

    print(f"dataset: n={n:,} mixed-sign values, delta=800, block size B={B}\n")

    # --- Theorem 5: O(sort(n)) I/Os, any memory size --------------------
    for mem_blocks in (6, 16, 64):
        dev = BlockDevice(block_size=B, memory=B * mem_blocks)
        src = ExtArray.from_numpy(dev, "input", x)
        res = extmem_sum_sorted(dev, src)
        bound = sum_sorted_bound(n, B * mem_blocks, B)
        print(
            f"Theorem 5  M={mem_blocks:>3d} blocks: {res.io.total:>6,} I/Os "
            f"(predicted ~{bound:,}), sigma={res.components}, "
            f"sum={res.value!r}"
        )

    # --- Theorem 6: O(scan(n)) I/Os when sigma(n) <= M ------------------
    dev = BlockDevice(block_size=B, memory=B * 16)
    src = ExtArray.from_numpy(dev, "input", x)
    res = extmem_sum_scan(dev, src)
    print(
        f"\nTheorem 6  M= 16 blocks: {res.io.total:>6,} I/Os "
        f"(scan(n) = {scan_bound(n, B):,}), sigma={res.components}, "
        f"sum={res.value!r}"
    )

    # --- the boundary: Theorem 6 with sigma(n) > M raises ----------------
    tiny = BlockDevice(block_size=8, memory=30)
    tsrc = ExtArray.from_numpy(tiny, "input", x[:5000])
    try:
        extmem_sum_scan(tiny, tsrc)
        raise SystemExit("expected a ModelViolationError")
    except ModelViolationError as exc:
        print(f"\nTheorem 6 with M < sigma(n) correctly refuses:\n  {exc}")
    print("   -> fall back to the sorting-based algorithm:")
    tiny2 = BlockDevice(block_size=8, memory=8 * 8)
    tsrc2 = ExtArray.from_numpy(tiny2, "input", x[:5000])
    res2 = extmem_sum_sorted(tiny2, tsrc2)
    print(f"  Theorem 5 on the tiny machine: {res2.io.total:,} I/Os, "
          f"sum={res2.value!r}")


if __name__ == "__main__":
    main()
