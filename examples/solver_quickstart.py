"""Reproducible iterative solvers on the reduction layer (PR 9 demo).

The classic failure mode this repo exists for: an iterative solver's
inner products are parallel reductions, so the *schedule* — which
worker finished first, how the blocks were chunked — leaks into the
computed dot products, and from there into every iterate.  Run the
same solver twice with two different (but mathematically equivalent)
schedules and the iterate histories drift apart.

This script runs conjugate gradients on an ill-conditioned SPD system
twice, under two shuffled block schedules, with the inner products
computed two ways:

* ``np.dot`` per block, partials accumulated in schedule order —
  the standard parallel-reduction shape.  The two runs **diverge**.
* ``reduce.dot`` over the same shuffled blocks — the reduction layer
  expands each product with TwoProduct and folds the terms exactly,
  so the correctly rounded result cannot depend on the order.  The
  two runs are **bit-identical**, iterate by iterate.

Every claim in the output is asserted, so this doubles as a smoke
test (CI runs it directly, and tests/test_examples.py runs it as part
of the tier-1 suite).

Usage::

    PYTHONPATH=src python examples/solver_quickstart.py
"""

from __future__ import annotations

import sys

import numpy as np

from repro import reduce

#: Problem size and schedule shape.  The diagonal spectrum spans
#: ~2^9, so the r.r and p.Ap reductions mix magnitudes aggressively
#: enough that any reordering of the partial sums moves the last bits.
N = 192
BLOCKS = 12
ITERATIONS = 120
SCHEDULE_SEEDS = (101, 202)


def make_problem(seed: int = 5):
    """An SPD diagonal system with a spread spectrum (cond ~ 2^9).

    Diagonal on purpose: the matvec is elementwise (deterministic by
    construction), so every last-bit difference between runs is
    attributable to the inner products alone.
    """
    rng = np.random.default_rng(seed)
    diag = np.ldexp(1.0 + rng.random(N), rng.integers(-4, 5, N))
    b = rng.standard_normal(N)
    return diag, b


def make_schedule(seed: int):
    """A shuffled assignment of the N coordinates to BLOCKS blocks —
    the stand-in for 'which worker got which chunk, in what order'."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(N)
    return np.array_split(order, BLOCKS)


def dot_numpy(x, y, schedule):
    """Parallel-reduction shape: np.dot per block, partials folded in
    schedule order.  The float additions between partials do not
    associate, so the result depends on the schedule."""
    total = 0.0
    for block in schedule:
        total += float(np.dot(x[block], y[block]))
    return total


def dot_exact(x, y, schedule):
    """Same blocks, same shuffled order — but the reduction layer
    folds the TwoProduct expansion exactly, so the correctly rounded
    value is schedule-independent by construction."""
    order = np.concatenate(schedule)
    return reduce.dot(x[order], y[order])


def conjugate_gradients(diag, b, schedule, dot):
    """Textbook CG; every inner product goes through ``dot``.

    Returns the iterate history as a list of (alpha, beta, rho) float
    triples plus the final iterate — enough to detect the first bit
    of schedule-dependent drift.
    """
    x = np.zeros(N)
    r = b.copy()
    p = r.copy()
    rho = dot(r, r, schedule)
    history = []
    for _ in range(ITERATIONS):
        ap = diag * p  # elementwise matvec: deterministic
        alpha = rho / dot(p, ap, schedule)
        x = x + alpha * p
        r = r - alpha * ap
        rho_next = dot(r, r, schedule)
        beta = rho_next / rho
        history.append((alpha, beta, rho_next))
        p = r + beta * p
        rho = rho_next
    return history, x


def first_divergence(hist_a, hist_b):
    """First iteration where the (alpha, beta, rho) triples differ,
    as ``(iteration, name, value_a, value_b)`` — or None if the two
    runs are bit-identical."""
    names = ("alpha", "beta", "rho")
    for i, (ta, tb) in enumerate(zip(hist_a, hist_b)):
        for name, a, b in zip(names, ta, tb):
            if a != b or repr(a) != repr(b):
                return i, name, a, b
    return None


def main() -> int:
    diag, b = make_problem()
    schedules = [make_schedule(seed) for seed in SCHEDULE_SEEDS]

    print(f"CG on an SPD system, n={N}, cond ~ 2^9, {BLOCKS} blocks")
    print(f"two shuffled schedules (seeds {SCHEDULE_SEEDS}), "
          f"{ITERATIONS} iterations each\n")

    # Sanity: the two schedules really are different partitions.
    assert not all(
        np.array_equal(a, b) for a, b in zip(schedules[0], schedules[1])
    )

    # --- np.dot path: partial sums in schedule order -----------------
    naive_runs = [
        conjugate_gradients(diag, b, s, dot_numpy) for s in schedules
    ]
    naive_div = first_divergence(naive_runs[0][0], naive_runs[1][0])
    assert naive_div is not None, (
        "np.dot runs were bit-identical — schedule leak not reproduced "
        "(inputs too tame?)"
    )
    it, name, va, vb = naive_div
    print("np.dot per block, partials in schedule order:")
    print(f"  runs diverge at iteration {it}, coefficient {name}:")
    print(f"    schedule A: {name} = {va!r}  ({va.hex()})")
    print(f"    schedule B: {name} = {vb!r}  ({vb.hex()})")
    drift = float(
        np.max(np.abs(naive_runs[0][1] - naive_runs[1][1]))
    )
    print(f"  final-iterate drift: max |x_A - x_B| = {drift:.3e}\n")

    # --- reduce.dot path: exact fold over the same shuffled blocks ---
    exact_runs = [
        conjugate_gradients(diag, b, s, dot_exact) for s in schedules
    ]
    exact_div = first_divergence(exact_runs[0][0], exact_runs[1][0])
    assert exact_div is None, (
        f"reduce.dot runs diverged at {exact_div} — exactness broken"
    )
    xa, xb = exact_runs[0][1], exact_runs[1][1]
    assert xa.tobytes() == xb.tobytes(), "final iterates differ bitwise"
    rho_final = exact_runs[0][0][-1][2]
    print("reduce.dot over the same shuffled blocks:")
    print(f"  all {ITERATIONS} iterations bit-identical across schedules")
    print(f"  final iterate identical to the byte "
          f"({xa.nbytes} bytes compared)")
    print(f"  final residual rho = {rho_final:.3e}")

    # CG monotonically shrinks the A-norm of the error; check the
    # exact-dot run actually solved something (x* = b / diag).
    x_star = b / diag
    err0 = float(np.sqrt(np.sum(diag * x_star * x_star)))
    err = float(np.sqrt(np.sum(diag * (xa - x_star) ** 2)))
    print(f"  A-norm error: {err0:.3e} -> {err:.3e}")
    assert err < 1e-3 * err0, "CG failed to reduce the A-norm error"

    print("\nall assertions passed: exact inner products make the "
          "solver schedule-independent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
