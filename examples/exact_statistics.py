#!/usr/bin/env python
"""Exact statistical reductions: mean, variance, norm without cancellation.

The one-pass variance formula ``E[x^2] - E[x]^2`` is the textbook
example of catastrophic cancellation: for data with a large common
offset the two terms agree in almost every bit and float subtraction
returns noise (often *negative* "variance"). `repro.stats` computes the
same algebra over exact sums and rounds once, so the result is the
correctly rounded true value — and reductions are reproducible across
any data partitioning, which matters for distributed aggregation.

Run: ``python examples/exact_statistics.py``
"""

from __future__ import annotations

import numpy as np

from repro.stats import exact_mean, exact_norm2, exact_variance


def naive_one_pass_variance(x: np.ndarray) -> float:
    return float(np.mean(x * x) - np.mean(x) ** 2)


def main() -> None:
    rng = np.random.default_rng(0)

    # --- variance under a large offset ---------------------------------
    print("variance of unit-variance noise on a growing offset:")
    print(f"{'offset':>10} {'naive one-pass':>18} {'exact':>12}")
    noise = rng.standard_normal(100_000)
    for offset in (0.0, 1e6, 1e8, 1e9):
        x = noise + offset
        naive = naive_one_pass_variance(x)
        exact = exact_variance(x)
        print(f"{offset:>10.0e} {naive:>18.10f} {exact:>12.10f}")
    print("  (the naive column degrades to garbage; the exact one cannot)\n")

    # --- mean of mixed-magnitude data -----------------------------------
    x = np.concatenate([np.full(1000, 1e16), np.full(1000, 1.0),
                        np.full(1000, -1e16)])
    rng.shuffle(x)
    print("mean of {1e16 x1000, 1.0 x1000, -1e16 x1000} (true: 1/3):")
    print(f"  np.mean    : {float(np.mean(x))!r}")
    print(f"  exact_mean : {exact_mean(x)!r}\n")

    # --- norms near the overflow edge ------------------------------------
    y = np.array([1.2e154, 0.9e154, -1.1e154])
    print("Euclidean norm with squares near the float ceiling:")
    print(f"  naive sqrt(sum(x^2)) : {float(np.sqrt(np.sum(y * y)))!r}")
    print(f"  exact_norm2          : {exact_norm2(y)!r}\n")

    # --- reproducibility across partitionings -----------------------------
    data = (rng.random(500_000) - 0.5) * 10.0 ** rng.integers(-30, 30, 500_000)
    chunked_means = set()
    for nchunks in (1, 7, 64):
        # exact partial sums merge exactly: any chunking, same bits
        from repro.core import SparseSuperaccumulator

        acc = SparseSuperaccumulator.zero()
        for chunk in np.array_split(data, nchunks):
            acc = acc.add(SparseSuperaccumulator.from_floats(chunk))
        chunked_means.add(acc.to_float())
    print(f"exact sum over 1/7/64 chunkings -> {len(chunked_means)} distinct "
          f"result(s): {chunked_means.pop()!r}")
    naive_sums = {float(np.sum(np.concatenate(np.array_split(data, k))))
                  for k in (1, 7, 64)}
    print(f"np.sum over reassembled chunkings -> "
          f"{len(naive_sums)} distinct result(s)")


if __name__ == "__main__":
    main()
