#!/usr/bin/env python
"""PRAM algorithms with model-cost accounting (§3-§4).

Shows the fast EREW PRAM summation (Theorem 2) with its round/work
counters, the condition-number-sensitive variant (Theorem 4) with its
r-squaring iteration trace, and the Theorem 2 lower-bound reduction
deciding multiset equality with one exact summation.

Run: ``python examples/pram_demo.py``
"""

from __future__ import annotations

import math

import numpy as np

from repro.core import condition_number
from repro.data import generate
from repro.pram import (
    condition_sensitive_sum,
    pram_exact_sum,
    sets_equal_by_summation,
)


def main() -> None:
    # --- Theorem 2: O(log n) time, O(n log n) work ----------------------
    print("Theorem 2 — fast PRAM summation (simulated EREW machine):")
    print(f"{'n':>7} {'rounds':>7} {'work':>10} {'work/(n log n)':>15}")
    for n in (256, 1024, 4096, 16384):
        x = generate("random", n, delta=300, seed=1)
        res = pram_exact_sum(x)
        norm = res.stats.work / (n * math.log2(n))
        print(f"{n:>7} {res.stats.rounds:>7} {res.stats.work:>10} {norm:>15.2f}")
    print("  (constant work/(n log n) ratio = the Theorem 2 work bound)\n")

    # --- Theorem 4: condition-sensitive work ----------------------------
    print("Theorem 4 — condition-sensitive algorithm, iteration traces:")
    cases = {
        "well-conditioned (C=1)": generate("well", 2048, delta=20, seed=2),
        "mild cancellation": generate("random", 2048, delta=200, seed=2),
        "sum exactly zero (C=inf)": generate("sumzero", 2048, delta=1200, seed=2),
    }
    for name, x in cases.items():
        res = condition_sensitive_sum(x)
        c = condition_number(x)
        trace = " -> ".join(
            f"r={t.r}{'*' if t.stopped else ''}" for t in res.iterations
        )
        print(f"  {name:<26s} C(X)={c:<10.3g} {trace}   work={res.stats.work:,}")
    print("  ('*' marks the iteration whose stopping condition fired)\n")

    # --- the lower-bound reduction ---------------------------------------
    print("Theorem 2 lower bound — set equality via exact summation:")
    rng = np.random.default_rng(3)
    c = rng.integers(0, 40, size=20).tolist()
    d = list(c)
    rng.shuffle(d)
    print(f"  equal multisets    -> {sets_equal_by_summation(c, d)}")
    d[0] = (d[0] + 1) % 40
    print(f"  one element bumped -> {sets_equal_by_summation(c, d)}")


if __name__ == "__main__":
    main()
